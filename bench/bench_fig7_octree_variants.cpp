// Figure 7: running time of the three octree configurations (OCT_CILK,
// OCT_MPI, OCT_MPI+CILK) on the ZDock benchmark, one 12-core node,
// eps = 0.9/0.9, approximate math ON, sorted by OCT_CILK time.
//
// Paper observations to reproduce: OCT_CILK wins below ~2,500 atoms
// (communication cost dominates the distributed variants on small
// inputs), OCT_MPI is slightly ahead of OCT_MPI+CILK below ~7,500 atoms
// (thread-scheduling and interfacing overhead), and the two converge for
// larger molecules.

#include <algorithm>
#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  perf::MachineModel machine;
  bench::print_environment(machine);

  struct Row {
    std::string name;
    std::size_t atoms;
    double cilk, mpi, hybrid;
  };
  std::vector<Row> rows;

  core::EngineConfig cfg;
  cfg.approx.approx_math = true;  // the paper's Fig. 7 setting

  for (const auto& entry : bench::zdock_selection()) {
    bench::Prepared p =
        bench::prepare(mol::make_benchmark_molecule(entry.name), cfg);
    Row r;
    r.name = entry.name;
    r.atoms = p.atoms();
    const auto cilk =
        bench::run_config(*p.engine, bench::oct_cilk_config(12));
    const auto mpi = bench::run_config(*p.engine, bench::oct_mpi_config(12));
    const auto hyb =
        bench::run_config(*p.engine, bench::oct_hybrid_config(12));
    r.cilk = cilk.total_seconds;
    r.mpi = mpi.total_seconds;
    r.hybrid = hyb.total_seconds;
    if (ts.active()) {
      bench::add_sim_metrics(ts.metrics(), "oct_cilk." + r.name, cilk);
      bench::add_sim_metrics(ts.metrics(), "oct_mpi." + r.name, mpi);
      bench::add_sim_metrics(ts.metrics(), "oct_hybrid." + r.name, hyb);
    }
    rows.push_back(r);
    std::printf("  %-10s %6zu atoms done\n", r.name.c_str(), r.atoms);
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.cilk < b.cilk; });

  util::Table t(
      "Fig. 7 — octree variants on 12 cores (modeled, approx math ON, "
      "sorted by OCT_CILK time)");
  t.header({"molecule", "atoms", "OCT_CILK", "OCT_MPI", "OCT_MPI+CILK",
            "fastest"});
  int cilk_wins_small = 0, mpi_wins_large = 0;
  for (const auto& r : rows) {
    const char* fastest =
        r.cilk <= r.mpi && r.cilk <= r.hybrid
            ? "OCT_CILK"
            : (r.mpi <= r.hybrid ? "OCT_MPI" : "OCT_MPI+CILK");
    if (r.atoms < 2500 && std::string(fastest) == "OCT_CILK")
      ++cilk_wins_small;
    if (r.atoms > 2500 && std::string(fastest) != "OCT_CILK")
      ++mpi_wins_large;
    t.row({r.name, util::format("%zu", r.atoms), bench::fmt_time(r.cilk),
           bench::fmt_time(r.mpi), bench::fmt_time(r.hybrid), fastest});
  }
  t.print();
  bench::save_csv(t, "fig7_octree_variants");
  ts.finish();

  std::printf(
      "\nPaper shape check: OCT_CILK fastest on %d of the <2500-atom "
      "molecules; a distributed variant fastest on %d of the larger "
      "ones.\n",
      cilk_wins_small, mpi_wins_large);
  return 0;
}
