// Figure 9: Epol computed by the different algorithms across the ZDock
// set. Everything here is a *real* computation (no timing model): octree
// engine, naive exact reference, and the package stand-ins (HCT/OBC over
// a 20 Å cutoff list, Still, GBr6 volume method).
//
// Paper observations to reproduce: Amber, GBr6, Gromacs, NAMD and OCT_MPI
// track the naive energy closely; Tinker reports ≈ 70 % of it; all octree
// variants agree with each other.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  perf::MachineModel machine;
  bench::print_environment(machine);

  util::Table t("Fig. 9 — Epol (kcal/mol) by algorithm");
  t.header({"molecule", "atoms", "Naive", "OCT", "Amber", "Gromacs", "NAMD",
            "Tinker", "GBr6", "OCT err%"});

  perf::RunStats oct_err, amber_ratio, tinker_ratio;
  for (const auto& entry : bench::zdock_selection()) {
    bench::Prepared p =
        bench::prepare(mol::make_benchmark_molecule(entry.name));
    const auto naive_born = core::naive_born_radii(p.molecule, p.surf);
    const double naive_e = core::naive_epol(p.molecule, naive_born);
    const auto oct = p.engine->compute();
    if (ts.active())
      ts.metrics().add_work(std::string("oct.") + entry.name, oct.work);

    std::map<std::string, double> pkg;
    for (const auto& spec : baselines::package_registry()) {
      const auto r = baselines::run_package(spec, p.molecule, machine);
      pkg[spec.name] = r.out_of_memory ? 0.0 : r.epol;
    }

    const double err = perf::percent_error(oct.epol, naive_e);
    oct_err.add(err);
    if (pkg["Amber 12"] != 0.0) amber_ratio.add(pkg["Amber 12"] / naive_e);
    if (pkg["Tinker 6.0"] != 0.0)
      tinker_ratio.add(pkg["Tinker 6.0"] / naive_e);

    auto fmt = [](double e) {
      return e == 0.0 ? std::string("OOM") : util::format("%.1f", e);
    };
    t.row({entry.name, util::format("%zu", p.atoms()),
           util::format("%.1f", naive_e), util::format("%.1f", oct.epol),
           fmt(pkg["Amber 12"]), fmt(pkg["Gromacs 4.5.3"]),
           fmt(pkg["NAMD 2.9"]), fmt(pkg["Tinker 6.0"]), fmt(pkg["GBr6"]),
           util::format("%.3f", err)});
    std::printf("  %-10s %6zu atoms done\n", entry.name, p.atoms());
  }

  std::puts("");
  t.print();
  bench::save_csv(t, "fig9_energy");
  ts.finish();

  std::printf(
      "\nPaper shape check:\n"
      "  octree-vs-naive error: avg %.3f%%, worst |%.3f|%% (paper: <1%%)\n"
      "  Amber/naive energy ratio: avg %.2f (paper: close to 1)\n"
      "  Tinker/naive energy ratio: avg %.2f (paper: ~0.7)\n",
      oct_err.mean(), std::max(std::abs(oct_err.min()), std::abs(oct_err.max())),
      amber_ratio.mean(), tinker_ratio.mean());
  return 0;
}
