// §V-C approximate-math claim: enabling the fast rsqrt/exp kernels shifts
// the energy error by a few percent and speeds up the computation by
// ×1.42 on average. The error shift here is *measured* (real kernels);
// the speedup is the machine model's documented constant applied to the
// measured interaction counts.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  args.parse(argc, argv);

  perf::MachineModel machine;
  bench::print_environment(machine);

  util::Table t("§V-C — approximate math on vs off (OCT_MPI+CILK, 12 cores)");
  t.header({"molecule", "atoms", "E exact-math", "E approx-math",
            "shift %", "time exact", "time approx", "speedup"});

  perf::RunStats shift, speedup;
  for (const auto& entry : bench::zdock_selection()) {
    const auto molecule = mol::make_benchmark_molecule(entry.name);
    core::EngineConfig cfg_exact;
    bench::Prepared p_exact = bench::prepare(molecule, cfg_exact);
    core::EngineConfig cfg_fast;
    cfg_fast.approx.approx_math = true;
    core::GBEngine fast_engine(p_exact.molecule, p_exact.surf, cfg_fast);

    const auto exact =
        bench::run_config(*p_exact.engine, bench::oct_hybrid_config(12));
    const auto fast =
        bench::run_config(fast_engine, bench::oct_hybrid_config(12));

    const double s = perf::percent_error(fast.epol, exact.epol);
    const double sp = exact.total_seconds / fast.total_seconds;
    shift.add(std::abs(s));
    speedup.add(sp);
    t.row({entry.name, util::format("%zu", p_exact.atoms()),
           util::format("%.1f", exact.epol), util::format("%.1f", fast.epol),
           util::format("%.2f", s), bench::fmt_time(exact.total_seconds),
           bench::fmt_time(fast.total_seconds), util::format("%.2f", sp)});
    std::printf("  %-10s done\n", entry.name);
  }
  std::puts("");
  t.print();
  bench::save_csv(t, "approx_math");

  std::printf(
      "\nPaper check: avg |energy shift| %.2f%% (paper: 4-5%%), avg "
      "speedup %.2fx (paper: 1.42x)\n",
      shift.mean(), speedup.mean());
  return 0;
}
