// Figure 10: effect of the Epol approximation parameter ε on (top) the
// percentage error in the energy and (bottom) the running time, with the
// Born-radius ε fixed at 0.9 and approximate math OFF, for the
// OCT_MPI+CILK configuration across the ZDock set.
//
// Paper observations: error (avg ± std across molecules) grows with ε and
// stays within ~±1.5 %; running time falls as ε grows; small molecules
// are ε-insensitive.

#include <cstdio>

#include "common.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  util::Args args;
  bench::TraceSession ts;
  ts.register_args(args);
  args.parse(argc, argv);
  ts.begin();

  perf::MachineModel machine;
  bench::print_environment(machine);

  const double eps_values[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

  // Per-molecule naive references (computed once) + engines per ε reuse
  // the same molecule and surface.
  struct Entry {
    bench::Prepared prepared;
    double naive_e;
  };
  std::vector<Entry> entries;
  for (const auto& e : bench::zdock_selection()) {
    Entry item{bench::prepare(mol::make_benchmark_molecule(e.name)), 0.0};
    const auto naive_born =
        core::naive_born_radii(item.prepared.molecule, item.prepared.surf);
    item.naive_e = core::naive_epol(item.prepared.molecule, naive_born);
    std::printf("  reference %-10s %6zu atoms done\n", e.name,
                item.prepared.atoms());
    entries.push_back(std::move(item));
  }

  util::Table t(
      "Fig. 10 — error and runtime vs eps_Epol (eps_Born = 0.9, approx "
      "math OFF, OCT_MPI+CILK on 12 cores)");
  t.header({"eps", "err avg %", "err std %", "err min %", "err max %",
            "time small (med)", "time large (med)"});

  for (double eps : eps_values) {
    perf::RunStats err;
    std::vector<double> small_times, large_times;
    for (auto& item : entries) {
      core::EngineConfig cfg;
      cfg.approx.eps_epol = eps;
      core::GBEngine engine(item.prepared.molecule, item.prepared.surf, cfg);
      const auto sim = bench::run_config(engine, bench::oct_hybrid_config(12));
      if (ts.active())
        bench::add_sim_metrics(
            ts.metrics(),
            util::format("oct_hybrid.eps%02d.", int(eps * 10 + 0.5)) +
                std::to_string(item.prepared.atoms()) + "atoms",
            sim);
      err.add(perf::percent_error(sim.epol, item.naive_e));
      (item.prepared.atoms() < 2500 ? small_times : large_times)
          .push_back(sim.total_seconds);
    }
    auto median = [](std::vector<double>& v) {
      if (v.empty()) return 0.0;
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    t.row({util::format("%.1f", eps), util::format("%.4f", err.mean()),
           util::format("%.4f", err.stddev()),
           util::format("%.4f", err.min()), util::format("%.4f", err.max()),
           bench::fmt_time(median(small_times)),
           bench::fmt_time(median(large_times))});
    std::printf("  eps=%.1f done\n", eps);
  }

  std::puts("");
  t.print();
  bench::save_csv(t, "fig10_epsilon");
  ts.finish();

  std::puts(
      "\nPaper shape check: |error| grows with eps but stays within the "
      "~1.5% band of Fig. 10; large-molecule time falls with eps while "
      "small-molecule time barely moves.");
  return 0;
}
