// Tests for the fault-injection runtime and the checkpointed, self-healing
// elastic hybrid driver: injector determinism, timeout/retry/checksum
// paths, checkpoint hardening, and the bit-identical-recovery contract.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <span>
#include <sstream>
#include <thread>

#include "octgb/core/checkpoint.hpp"
#include "octgb/core/hybrid.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/mpp/faults.hpp"
#include "octgb/mpp/mpp.hpp"
#include "octgb/octree/serialize.hpp"
#include "octgb/sim/cluster.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/util/check.hpp"

using namespace octgb;
using mpp::Comm;
using mpp::Runtime;
using namespace mpp::faults;

// ---- injector ---------------------------------------------------------------

TEST(Faults, InjectorIsDeterministicForEqualPlans) {
  const FaultPlan plan = message_loss_plan(/*seed=*/42, /*p=*/0.3);
  const FaultInjector a(plan, 4), b(plan, 4);
  for (int src = 0; src < 4; ++src)
    for (int dest = 0; dest < 4; ++dest)
      for (std::uint64_t op = 0; op < 200; ++op) {
        const auto fa = a.on_send(src, dest, op);
        const auto fb = b.on_send(src, dest, op);
        ASSERT_EQ(fa.drop, fb.drop) << src << "→" << dest << " op " << op;
      }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_GT(a.stats().drops, 0u);  // p = 0.3 over 3200 sends must fire
}

TEST(Faults, DifferentSeedsGiveDifferentSchedules) {
  const FaultInjector a(message_loss_plan(1, 0.5), 2);
  const FaultInjector b(message_loss_plan(2, 0.5), 2);
  int differing = 0;
  for (std::uint64_t op = 0; op < 256; ++op)
    if (a.on_send(0, 1, op).drop != b.on_send(0, 1, op).drop) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(Faults, KillRuleFiresOnceAtTheScheduledOp) {
  const FaultInjector inj(rank_kill_plan(/*seed=*/7, /*victim=*/2,
                                         /*after_op=*/5),
                          4);
  for (std::uint64_t op = 0; op < 5; ++op)
    EXPECT_FALSE(inj.should_kill(2, op)) << "op " << op;
  EXPECT_FALSE(inj.should_kill(1, 5));  // wrong rank
  EXPECT_TRUE(inj.should_kill(2, 5));
  EXPECT_FALSE(inj.should_kill(2, 6));  // max_fires = 1
  EXPECT_EQ(inj.stats().kills, 1u);
}

TEST(Faults, StallRuleReturnsConfiguredDuration) {
  const FaultInjector inj(stall_plan(/*seed=*/3, /*p=*/1.0, /*millis=*/4.5),
                          2);
  EXPECT_DOUBLE_EQ(inj.stall_ms(0, 0), 4.5);
  EXPECT_GT(inj.stats().stalls, 0u);
}

TEST(Faults, Crc32KnownAnswer) {
  // The canonical CRC-32 check value (IEEE 802.3, reflected).
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, std::strlen(s)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

// ---- runtime fault paths ----------------------------------------------------

namespace {

Runtime::Options base_opts(int ranks) {
  Runtime::Options o;
  o.ranks = ranks;
  o.topology.ranks_per_node = 2;
  return o;
}

}  // namespace

TEST(Faults, DroppedMessageSurfacesAsTimeout) {
  auto o = base_opts(2);
  o.fault_plan = message_loss_plan(/*seed=*/5, /*p=*/1.0);  // drop all
  FaultStats stats;
  o.fault_stats_out = &stats;
  Runtime::run(o, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 1, 3.5);  // vanishes on the wire
    } else {
      double v = 0.0;
      auto r = c.recv_bytes_deadline(0, 1, &v, sizeof(v), 10.0);
      ASSERT_FALSE(r.has_value());
      EXPECT_EQ(r.error().status, mpp::CommStatus::Timeout);
    }
  });
  EXPECT_GE(stats.drops, 1u);
}

TEST(Faults, CorruptionIsDetectedByChecksumAndRetryFindsCleanCopy) {
  auto o = base_opts(2);
  o.checksum = true;
  FaultPlan plan;
  plan.seed = 11;
  // Corrupt exactly the sender's first message; the re-send is clean.
  plan.rules.push_back({.kind = FaultKind::Corrupt,
                        .rank = 0,
                        .probability = 1.0,
                        .max_fires = 1});
  o.fault_plan = plan;
  Runtime::run(o, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 4, 2.75);  // corrupted in flight
      c.send_value(1, 4, 2.75);  // clean
    } else {
      double v = 0.0;
      mpp::RetryPolicy policy;
      policy.attempts = 5;
      policy.deadline_ms = 50.0;
      auto r = c.recv_bytes_retry(0, 4, &v, sizeof(v), policy);
      ASSERT_TRUE(r.has_value());
      EXPECT_DOUBLE_EQ(v, 2.75);
      EXPECT_GE(c.retries(), 1u);  // the corrupt copy cost one attempt
    }
  });
}

TEST(Faults, DelayedMessageArrivesAfterItsDelay) {
  auto o = base_opts(2);
  FaultPlan plan;
  plan.seed = 13;
  plan.rules.push_back(
      {.kind = FaultKind::Delay, .probability = 1.0, .millis = 20.0});
  o.fault_plan = plan;
  Runtime::run(o, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 2, 7);
    } else {
      // Shorter than the delay: must time out, message still in flight.
      int v = 0;
      auto r = c.recv_bytes_deadline(0, 2, &v, sizeof(v), 2.0);
      EXPECT_FALSE(r.has_value());
      // Unbounded receive waits out the delay and succeeds.
      EXPECT_EQ(c.recv_value<int>(0, 2), 7);
    }
  });
}

TEST(Faults, KilledRankIsObservedAsPeerDead) {
  auto o = base_opts(2);
  o.fault_plan = rank_kill_plan(/*seed=*/17, /*victim=*/1, /*after_op=*/0);
  Runtime::run(o, [](Comm& c) {
    if (c.rank() == 0) {
      // Rank 1 dies at its first comm op; this receive must fail fast
      // with PeerDead instead of hanging (the deadline is a backstop).
      int v = 0;
      auto r = c.recv_bytes_retry(1, 9, &v, sizeof(v),
                                  {.attempts = 200, .deadline_ms = 10.0,
                                   .backoff = 1.0});
      ASSERT_FALSE(r.has_value());
      EXPECT_EQ(r.error().status, mpp::CommStatus::PeerDead);
      EXPECT_FALSE(c.is_alive(1));
      EXPECT_EQ(c.failure_epoch(), 1);
      EXPECT_EQ(c.alive_ranks(), std::vector<int>{0});
    } else {
      c.send_value(0, 9, 1);  // fault point: dies here
      FAIL() << "rank 1 should have been killed";
    }
  });
}

TEST(Faults, RetryAbortsRemainingBackoffWhenFailureEpochAdvances) {
  // Regression for the fail-fast contract: a death *anywhere* in the job
  // (not just at the awaited source) must abort a retry-with-backoff wait
  // immediately. Rank 0 waits on rank 1 — who never sends — under a
  // schedule worth ~10 s; rank 2 dies at its first comm op. The epoch
  // advance must surface as Timeout long before the schedule drains.
  auto o = base_opts(3);
  o.fault_plan = rank_kill_plan(/*seed=*/23, /*victim=*/2, /*after_op=*/0);
  Runtime::run(o, [](Comm& c) {
    if (c.rank() == 0) {
      int v = 0;
      const auto t0 = std::chrono::steady_clock::now();
      auto r = c.recv_bytes_retry(1, 6, &v, sizeof(v),
                                  {.attempts = 50, .deadline_ms = 200.0,
                                   .backoff = 1.0});
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      ASSERT_FALSE(r.has_value());
      // Rank 1 is alive, so the abort reports Timeout (not PeerDead).
      EXPECT_EQ(r.error().status, mpp::CommStatus::Timeout);
      EXPECT_EQ(c.failure_epoch(), 1);
      EXPECT_LT(elapsed_ms, 5000.0) << "epoch advance did not abort the "
                                       "remaining backoff schedule";
    } else if (c.rank() == 2) {
      c.send_value(0, 99, 1);  // fault point: dies here
      FAIL() << "rank 2 should have been killed";
    }
    // Rank 1 stays silent and exits cleanly.
  });
}

TEST(Faults, RetryWithoutEpochAbortDrainsTheFullSchedule) {
  // The opt-out: with abort_on_epoch_advance = false the same unrelated
  // death leaves the wait running to the end of its (small) schedule.
  auto o = base_opts(3);
  o.fault_plan = rank_kill_plan(/*seed=*/29, /*victim=*/2, /*after_op=*/0);
  Runtime::run(o, [](Comm& c) {
    if (c.rank() == 0) {
      int v = 0;
      const auto t0 = std::chrono::steady_clock::now();
      auto r = c.recv_bytes_retry(1, 6, &v, sizeof(v),
                                  {.attempts = 4, .deadline_ms = 30.0,
                                   .backoff = 1.0,
                                   .abort_on_epoch_advance = false});
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      ASSERT_FALSE(r.has_value());
      EXPECT_EQ(r.error().status, mpp::CommStatus::Timeout);
      EXPECT_GE(elapsed_ms, 100.0) << "wait ended before the schedule "
                                      "despite abort_on_epoch_advance=false";
    } else if (c.rank() == 2) {
      c.send_value(0, 99, 1);  // fault point: dies here
      FAIL() << "rank 2 should have been killed";
    }
  });
}

TEST(Faults, CollectivePayloadCorruptionIsDetectedByChecksum) {
  // Satellite: the per-message CRC covers collective *internals* — every
  // hop of bcast / reduce_sum / gatherv is a checksummed message, so a
  // corrupted hop surfaces as ChecksumMismatch at the receiving rank
  // instead of silently poisoning the reduction.
  const auto expect_mismatch = [](int corrupt_rank, auto&& body) {
    auto o = base_opts(2);
    o.checksum = true;
    FaultPlan plan;
    plan.seed = 31;
    plan.rules.push_back({.kind = FaultKind::Corrupt,
                          .rank = corrupt_rank,
                          .probability = 1.0});
    o.fault_plan = plan;
    Runtime::run(o, [&](Comm& c) {
      const bool receiving_end = c.rank() != corrupt_rank;
      try {
        body(c);
        EXPECT_FALSE(receiving_end)
            << "corrupt collective hop went undetected";
      } catch (const mpp::CommException& e) {
        EXPECT_TRUE(receiving_end);
        EXPECT_EQ(e.error().status, mpp::CommStatus::ChecksumMismatch);
      }
    });
  };
  // Bcast: root 0's hop to rank 1 is corrupted.
  expect_mismatch(0, [](Comm& c) {
    std::vector<double> data = {1.0, 2.0, 3.0};
    c.bcast(std::span<double>(data), /*root=*/0);
  });
  // Reduce: rank 1's contribution to root 0 is corrupted.
  expect_mismatch(1, [](Comm& c) {
    std::vector<double> data = {4.0, 5.0};
    c.reduce_sum(std::span<double>(data), /*root=*/0);
  });
  // Gatherv: rank 1's segment to root 0 is corrupted.
  expect_mismatch(1, [](Comm& c) {
    const std::vector<double> mine(3, 1.0 + c.rank());
    (void)c.gatherv(std::span<const double>(mine), /*root=*/0);
  });
}

// ---- checkpoint wire format -------------------------------------------------

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  core::SuperstepCheckpoint c;
  c.phase = "integrals";
  c.task = 3;
  c.data = {1.5, -2.25, 0.0, 1e300};
  const auto decoded = core::decode_checkpoint(core::encode_checkpoint(c));
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value(), c);
}

TEST(Checkpoint, EmptyPayloadAndPhaseRoundTrip) {
  core::SuperstepCheckpoint c;  // empty phase, task 0, no data
  const auto decoded = core::decode_checkpoint(core::encode_checkpoint(c));
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value(), c);
}

TEST(Checkpoint, TruncationAtEveryByteIsACleanError) {
  // The hardening contract: chopping the stream at *any* point yields a
  // descriptive error, never UB or partial state.
  core::SuperstepCheckpoint c;
  c.phase = "born";
  c.task = 7;
  c.data = {3.5, 4.5, 5.5};
  const std::string bytes = core::encode_checkpoint(c);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto r =
        core::decode_checkpoint(std::string_view(bytes).substr(0, cut));
    ASSERT_FALSE(r.has_value()) << "cut at " << cut << " parsed";
    ASSERT_FALSE(r.error().empty());
  }
  EXPECT_TRUE(core::decode_checkpoint(bytes).has_value());
}

TEST(Checkpoint, OctreeV2StreamTruncationSweepErrorsCleanly) {
  // The serialize-v2 extension appends the "mkey"/"mgrd" tagged sections
  // after the v1 body; the hardening contract extends to them — a stream
  // cut anywhere (header region, the v1 body, either new section's header
  // or payload) must throw a CheckError, never crash or hand back a
  // half-loaded tree.
  const auto m = mol::generate_protein({.target_atoms = 150, .seed = 55});
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const octree::Octree tree = octree::Octree::build(pts);
  ASSERT_TRUE(tree.has_morton());  // the v2 sections are non-empty
  std::stringstream ss;
  octree::write_octree(tree, ss);
  const std::string bytes = ss.str();
  // The Morton tail: both section headers (24 bytes each), every key, and
  // the 5-double grid payload.
  const std::size_t tail =
      2 * 24 + tree.keys().size() * sizeof(std::uint64_t) + 5 * sizeof(double);
  ASSERT_GT(bytes.size(), tail);
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < std::min<std::size_t>(bytes.size(), 128); ++i)
    cuts.push_back(i);  // header region, every byte
  for (std::size_t i = 128; i + tail < bytes.size(); i += 97)
    cuts.push_back(i);  // v1 body, strided
  for (std::size_t i = bytes.size() - tail; i < bytes.size(); ++i)
    cuts.push_back(i);  // v2 sections, every byte
  for (const std::size_t cut : cuts) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(octree::read_octree(truncated), util::CheckError)
        << "cut at " << cut << " of " << bytes.size();
  }
  std::stringstream whole(bytes);
  EXPECT_NO_THROW(octree::read_octree(whole));
}

TEST(Checkpoint, BadMagicAndCorruptLengthAreRejected) {
  core::SuperstepCheckpoint c;
  c.phase = "epol";
  c.data = {1.0};
  std::string bytes = core::encode_checkpoint(c);
  {
    std::string bad = bytes;
    bad[0] ^= 0x40;
    const auto r = core::decode_checkpoint(bad);
    ASSERT_FALSE(r.has_value());
    EXPECT_NE(r.error().find("magic"), std::string::npos);
  }
  {
    // Blow up the phase-length field (offset 12): must be rejected as
    // implausible before any allocation happens.
    std::string bad = bytes;
    bad[12] = '\x7f';
    bad[18] = '\x7f';
    EXPECT_FALSE(core::decode_checkpoint(bad).has_value());
  }
  {
    std::string bad = bytes;
    bad += "x";  // trailing garbage
    EXPECT_FALSE(core::decode_checkpoint(bad).has_value());
  }
}

TEST(Checkpoint, StoreRoundTripAndCorruptEntryReadsAsMissing) {
  core::CheckpointStore store;
  core::SuperstepCheckpoint c;
  c.phase = "integrals";
  c.task = 1;
  c.data = {2.5};
  store.put_checkpoint(c);
  EXPECT_EQ(store.size(), 1u);
  const auto back = store.get_checkpoint("integrals", 1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);
  EXPECT_FALSE(store.get_checkpoint("integrals", 2).has_value());
  // A corrupt entry is treated as missing, so the task is recomputed.
  store.put(core::CheckpointStore::key_of("integrals", 1), "garbage");
  EXPECT_FALSE(store.get_checkpoint("integrals", 1).has_value());
  EXPECT_GE(store.puts(), 2u);
}

TEST(Checkpoint, StoreIsThreadSafe) {
  core::CheckpointStore store;
  std::vector<std::thread> threads;
  static constexpr const char* kPhases[4] = {"p0", "p1", "p2", "p3"};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 50; ++i) {
        core::SuperstepCheckpoint c;
        c.phase = kPhases[t];
        c.task = static_cast<std::uint64_t>(i);
        c.data = {static_cast<double>(t), static_cast<double>(i)};
        store.put_checkpoint(c);
        (void)store.get_checkpoint(c.phase, c.task);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), 200u);
}

// ---- elastic driver: bit-identical recovery ---------------------------------

namespace {

struct ElasticFixture {
  mol::Molecule molecule;
  surface::Surface surf;
  core::GBEngine engine;
  double reference_epol;

  ElasticFixture()
      : molecule(mol::generate_protein({.target_atoms = 400, .seed = 31})),
        surf(surface::build_surface(molecule, {.subdivision = 1})),
        engine(molecule, surf) {
    reference_epol = engine.compute().epol;
  }
};

ElasticFixture& elastic_fixture() {
  static ElasticFixture f;
  return f;
}

core::ElasticResult run_elastic(FaultPlan plan, int ranks = 4) {
  core::ElasticConfig cfg;
  cfg.hybrid.ranks = ranks;
  cfg.hybrid.topology.ranks_per_node = 2;
  cfg.fault_plan = std::move(plan);
  return core::run_hybrid_elastic(elastic_fixture().engine, cfg);
}

/// The fault-free elastic result all faulty runs must match bit for bit.
const core::ElasticResult& elastic_baseline() {
  static core::ElasticResult base = run_elastic(FaultPlan{});
  return base;
}

void expect_bit_identical(const core::ElasticResult& r) {
  const auto& base = elastic_baseline();
  EXPECT_EQ(r.epol, base.epol);  // exact FP equality, not NEAR
  ASSERT_EQ(r.born.size(), base.born.size());
  for (std::size_t i = 0; i < r.born.size(); ++i)
    ASSERT_EQ(r.born[i], base.born[i]) << "atom " << i;
}

}  // namespace

TEST(Elastic, FaultFreeRunMatchesSerialReferenceAndDoesMinimalWork) {
  const auto& base = elastic_baseline();
  const auto& f = elastic_fixture();
  EXPECT_NEAR(base.epol, f.reference_epol,
              1e-9 * std::abs(f.reference_epol));
  EXPECT_EQ(base.ranks_completed, 4);
  EXPECT_TRUE(base.dead_ranks.empty());
  EXPECT_EQ(base.tasks_computed, 12u);  // 3 phases × 4 tasks, no repeats
  EXPECT_EQ(base.tasks_recomputed, 0u);
  EXPECT_EQ(base.faults.total(), 0u);
}

TEST(Elastic, KillOneRankRecoversBitIdentically) {
  const auto r = run_elastic(rank_kill_plan(/*seed=*/101, /*victim=*/2,
                                            /*after_op=*/4));
  expect_bit_identical(r);
  EXPECT_EQ(r.ranks_completed, 3);
  ASSERT_EQ(r.dead_ranks.size(), 1u);
  EXPECT_EQ(r.dead_ranks[0], 2);
  EXPECT_EQ(r.faults.kills, 1u);
  EXPECT_GT(r.tasks_recomputed, 0u);  // survivors redid the lost segments
}

TEST(Elastic, KillAllButOneRankStillRecovers) {
  FaultPlan plan;
  plan.seed = 202;
  // Each rank polls the fault point at least twice per phase (six ops per
  // run), so ops 1/3/5 are guaranteed to be reached — one death per phase.
  for (int victim = 1; victim < 4; ++victim)
    plan.rules.push_back({.kind = FaultKind::Kill,
                          .rank = victim,
                          .probability = 1.0,
                          .after_op = static_cast<std::uint64_t>(2 * victim - 1),
                          .max_fires = 1});
  const auto r = run_elastic(std::move(plan));
  expect_bit_identical(r);
  EXPECT_EQ(r.ranks_completed, 1);
  EXPECT_EQ(r.dead_ranks.size(), 3u);
  EXPECT_EQ(r.faults.kills, 3u);
}

TEST(Elastic, MessageLossRecoversBitIdentically) {
  const auto r = run_elastic(message_loss_plan(/*seed=*/303, /*p=*/0.25));
  expect_bit_identical(r);
  EXPECT_EQ(r.ranks_completed, 4);
  EXPECT_GE(r.faults.drops, 1u);
}

TEST(Elastic, CorruptionWithChecksumRecoversBitIdentically) {
  const auto r = run_elastic(corruption_plan(/*seed=*/404, /*p=*/0.5));
  expect_bit_identical(r);
  EXPECT_EQ(r.ranks_completed, 4);
  EXPECT_GE(r.faults.corruptions, 1u);
}

TEST(Elastic, StallsOnlySlowTheRunDown) {
  const auto r = run_elastic(stall_plan(/*seed=*/505, /*p=*/0.05,
                                        /*millis=*/2.0));
  expect_bit_identical(r);
  EXPECT_EQ(r.ranks_completed, 4);
  EXPECT_EQ(r.tasks_recomputed, 0u);  // stalled ranks stay alive and keep
                                      // their tasks
}

TEST(Elastic, CombinedChaosPlanRecoversBitIdentically) {
  FaultPlan plan = message_loss_plan(/*seed=*/606, /*p=*/0.1);
  plan.rules.push_back(
      {.kind = FaultKind::Delay, .probability = 0.1, .millis = 3.0});
  plan.rules.push_back({.kind = FaultKind::Duplicate, .probability = 0.1});
  plan.rules.push_back({.kind = FaultKind::Corrupt, .probability = 0.1});
  plan.rules.push_back({.kind = FaultKind::Kill,
                        .rank = 1,
                        .probability = 1.0,
                        .after_op = 5,
                        .max_fires = 1});
  const auto r = run_elastic(std::move(plan));
  expect_bit_identical(r);
  EXPECT_EQ(r.ranks_completed, 3);
  EXPECT_EQ(r.dead_ranks, std::vector<int>{1});
}

TEST(Elastic, SingleRankSurvivesWithoutPeers) {
  const auto r = run_elastic(FaultPlan{}, /*ranks=*/1);
  const auto& f = elastic_fixture();
  EXPECT_NEAR(r.epol, f.reference_epol, 1e-9 * std::abs(f.reference_epol));
  EXPECT_EQ(r.ranks_completed, 1);
}

// ---- recovery model ---------------------------------------------------------

TEST(RecoveryModel, OptimalIntervalFollowsYoungDaly) {
  EXPECT_DOUBLE_EQ(sim::optimal_checkpoint_interval(0.5, 3600.0),
                   std::sqrt(2.0 * 0.5 * 3600.0));
  // More frequent failures → checkpoint more often.
  EXPECT_LT(sim::optimal_checkpoint_interval(0.5, 600.0),
            sim::optimal_checkpoint_interval(0.5, 3600.0));
}

TEST(RecoveryModel, EstimateChargesCheckpointsAndRework) {
  sim::SimResult base;
  base.total_seconds = 100.0;
  sim::RecoveryConfig cfg;
  cfg.mtbf_seconds = 500.0;
  cfg.checkpoint_seconds = 0.2;
  cfg.checkpoint_interval_seconds = 10.0;
  const auto est = sim::estimate_recovery(base, cfg);
  EXPECT_DOUBLE_EQ(est.interval_seconds, 10.0);
  EXPECT_DOUBLE_EQ(est.checkpoint_overhead_seconds, 2.0);  // 10 ckpts × 0.2
  EXPECT_GT(est.expected_failures, 0.0);
  EXPECT_GT(est.rework_seconds, 0.0);
  EXPECT_GT(est.expected_total_seconds, base.total_seconds);
  EXPECT_GT(est.overhead_fraction, 0.0);

  // The Young/Daly optimum must beat a far-too-eager cadence.
  sim::RecoveryConfig eager = cfg;
  eager.checkpoint_interval_seconds = 0.5;
  sim::RecoveryConfig optimal = cfg;
  optimal.checkpoint_interval_seconds = 0.0;  // pick √(2δM)
  EXPECT_LT(sim::estimate_recovery(base, optimal).expected_total_seconds,
            sim::estimate_recovery(base, eager).expected_total_seconds);
}
