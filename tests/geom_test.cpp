// Tests for octgb::geom — vectors, boxes, transforms, quadrature, meshes.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "octgb/geom/aabb.hpp"
#include "octgb/geom/mesh.hpp"
#include "octgb/geom/quadrature.hpp"
#include "octgb/geom/transform.hpp"
#include "octgb/geom/vec3.hpp"
#include "octgb/util/rng.hpp"

using octgb::geom::Aabb;
using octgb::geom::Mat3;
using octgb::geom::RigidTransform;
using octgb::geom::Vec3;

// ---- Vec3 ------------------------------------------------------------------

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), (Vec3{-3, 6, -3}));
  EXPECT_DOUBLE_EQ(a.cross(b).dot(a), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b).dot(b), 0.0);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.normalized().norm(), 1.0);
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(octgb::geom::dist({0, 0, 0}, {1, 2, 2}), 3.0);
  EXPECT_DOUBLE_EQ(octgb::geom::dist2({0, 0, 0}, {1, 2, 2}), 9.0);
}

// ---- Aabb ------------------------------------------------------------------

TEST(Aabb, EmptyAndExpand) {
  Aabb b;
  EXPECT_TRUE(b.empty());
  b.expand({1, 2, 3});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.lo, b.hi);
  b.expand({-1, 4, 0});
  EXPECT_EQ(b.lo, (Vec3{-1, 2, 0}));
  EXPECT_EQ(b.hi, (Vec3{1, 4, 3}));
}

TEST(Aabb, CenterExtentRadius) {
  Aabb b{{0, 0, 0}, {2, 4, 6}};
  EXPECT_EQ(b.center(), (Vec3{1, 2, 3}));
  EXPECT_DOUBLE_EQ(b.max_extent(), 6.0);
  EXPECT_DOUBLE_EQ(b.radius(), std::sqrt(4 + 16 + 36) / 2);
}

TEST(Aabb, ContainsAndOverlaps) {
  Aabb b{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(b.contains({0.5, 0.5, 0.5}));
  EXPECT_TRUE(b.contains({0, 0, 0}));  // boundary inclusive
  EXPECT_FALSE(b.contains({1.01, 0.5, 0.5}));
  EXPECT_TRUE(b.overlaps(Aabb{{0.5, 0.5, 0.5}, {2, 2, 2}}));
  EXPECT_FALSE(b.overlaps(Aabb{{2, 2, 2}, {3, 3, 3}}));
  EXPECT_FALSE(b.overlaps(Aabb{}));
}

TEST(Aabb, CubifiedIsCubeContainingBox) {
  Aabb b{{0, 0, 0}, {2, 4, 8}};
  const Aabb c = b.cubified();
  const Vec3 e = c.extent();
  EXPECT_DOUBLE_EQ(e.x, 8.0);
  EXPECT_DOUBLE_EQ(e.y, 8.0);
  EXPECT_DOUBLE_EQ(e.z, 8.0);
  EXPECT_TRUE(c.contains(b.lo));
  EXPECT_TRUE(c.contains(b.hi));
  EXPECT_EQ(c.center(), b.center());
}

TEST(Aabb, OfPointSet) {
  const std::vector<Vec3> pts = {{0, 1, 2}, {3, -1, 0}, {1, 1, 1}};
  const Aabb b = Aabb::of(pts);
  EXPECT_EQ(b.lo, (Vec3{0, -1, 0}));
  EXPECT_EQ(b.hi, (Vec3{3, 1, 2}));
}

// ---- transforms ------------------------------------------------------------

TEST(Transform, AxisAngleIsOrthogonal) {
  const Mat3 r = Mat3::axis_angle({1, 2, 3}, 0.7);
  EXPECT_LT(r.orthogonality_error(), 1e-12);
}

TEST(Transform, RotationPreservesLengthsAndAngles) {
  const Mat3 r = Mat3::euler_zyx(0.3, -1.1, 2.0);
  octgb::util::Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    const Vec3 a{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 b{rng.normal(), rng.normal(), rng.normal()};
    EXPECT_NEAR(r.apply(a).norm(), a.norm(), 1e-12);
    EXPECT_NEAR(r.apply(a).dot(r.apply(b)), a.dot(b), 1e-10);
  }
}

TEST(Transform, QuarterTurnAboutZ) {
  const Mat3 r = Mat3::axis_angle({0, 0, 1}, std::numbers::pi / 2);
  const Vec3 v = r.apply({1, 0, 0});
  EXPECT_NEAR(v.x, 0.0, 1e-15);
  EXPECT_NEAR(v.y, 1.0, 1e-15);
  EXPECT_NEAR(v.z, 0.0, 1e-15);
}

TEST(Transform, ComposeMatchesSequentialApplication) {
  const RigidTransform a{Mat3::axis_angle({0, 1, 0}, 0.4), {1, 2, 3}};
  const RigidTransform b{Mat3::axis_angle({1, 0, 0}, -0.9), {-2, 0, 5}};
  const Vec3 p{0.3, -1.2, 2.2};
  const Vec3 via_compose = (a * b).apply(p);
  const Vec3 via_seq = a.apply(b.apply(p));
  EXPECT_NEAR((via_compose - via_seq).norm(), 0.0, 1e-12);
}

TEST(Transform, InverseRoundTrips) {
  const RigidTransform t{Mat3::euler_zyx(1.0, 0.5, -0.3), {4, -1, 2}};
  const Vec3 p{1, 2, 3};
  EXPECT_NEAR((t.inverse().apply(t.apply(p)) - p).norm(), 0.0, 1e-12);
  EXPECT_NEAR((t.apply(t.inverse().apply(p)) - p).norm(), 0.0, 1e-12);
}

// ---- quadrature ------------------------------------------------------------

namespace {

/// Exact integral of x^p y^q over the unit right triangle
/// {(x,y): x,y >= 0, x+y <= 1}: p! q! / (p+q+2)!.
double exact_monomial_integral(int p, int q) {
  auto fact = [](int n) {
    double f = 1;
    for (int i = 2; i <= n; ++i) f *= i;
    return f;
  };
  return fact(p) * fact(q) / fact(p + q + 2);
}

/// Integrate x^p y^q with a Dunavant rule mapped to the unit triangle with
/// vertices (0,0), (1,0), (0,1).
double quad_monomial(int degree, int p, int q) {
  double sum = 0;
  for (const auto& pt : octgb::geom::dunavant_rule(degree)) {
    const double x = pt.b;  // v1 = (1,0)
    const double y = pt.c;  // v2 = (0,1)
    sum += pt.w * std::pow(x, p) * std::pow(y, q);
  }
  return sum * 0.5;  // triangle area
}

}  // namespace

/// Property: rule of degree d integrates every monomial of total degree
/// <= d exactly.
class DunavantExactness : public ::testing::TestWithParam<int> {};

TEST_P(DunavantExactness, IntegratesMonomialsUpToDegree) {
  const int degree = GetParam();
  // The published 15-digit point coordinates limit the degree-8 rule to
  // ~1e-11 absolute accuracy; lower degrees are exact to rounding.
  const double tol = degree >= 8 ? 1e-10 : 1e-13;
  for (int p = 0; p <= degree; ++p) {
    for (int q = 0; p + q <= degree; ++q) {
      EXPECT_NEAR(quad_monomial(degree, p, q),
                  exact_monomial_integral(p, q), tol)
          << "degree=" << degree << " monomial x^" << p << " y^" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, DunavantExactness,
                         ::testing::Range(1, 9));

TEST(Dunavant, WeightsSumToOne) {
  for (int d = 1; d <= 8; ++d) {
    double sum = 0;
    for (const auto& pt : octgb::geom::dunavant_rule(d)) sum += pt.w;
    EXPECT_NEAR(sum, 1.0, 1e-13) << "degree " << d;
  }
}

TEST(Dunavant, BarycentricCoordinatesSumToOne) {
  for (int d = 1; d <= 8; ++d) {
    for (const auto& pt : octgb::geom::dunavant_rule(d)) {
      EXPECT_NEAR(pt.a + pt.b + pt.c, 1.0, 1e-13);
    }
  }
}

TEST(Dunavant, DegreeIsClampedToValidRange) {
  EXPECT_EQ(octgb::geom::dunavant_rule(0).size(),
            octgb::geom::dunavant_rule(1).size());
  EXPECT_EQ(octgb::geom::dunavant_rule(99).size(),
            octgb::geom::dunavant_rule(8).size());
}

TEST(Dunavant, PointCounts) {
  EXPECT_EQ(octgb::geom::dunavant_point_count(1), 1u);
  EXPECT_EQ(octgb::geom::dunavant_point_count(2), 3u);
  EXPECT_EQ(octgb::geom::dunavant_point_count(3), 4u);
  EXPECT_EQ(octgb::geom::dunavant_point_count(4), 6u);
  EXPECT_EQ(octgb::geom::dunavant_point_count(5), 7u);
  EXPECT_EQ(octgb::geom::dunavant_point_count(6), 12u);
  EXPECT_EQ(octgb::geom::dunavant_point_count(7), 13u);
  EXPECT_EQ(octgb::geom::dunavant_point_count(8), 16u);
}

TEST(Quadrature, ApplyRuleWeightsSumToArea) {
  const Vec3 v0{0, 0, 0}, v1{2, 0, 0}, v2{0, 3, 0};
  std::vector<octgb::geom::SurfacePoint> pts;
  octgb::geom::apply_rule_to_triangle(octgb::geom::dunavant_rule(4), v0, v1,
                                      v2, {0, 0, 1}, pts);
  double w = 0;
  for (const auto& p : pts) w += p.weight;
  EXPECT_NEAR(w, 3.0, 1e-12);  // area = 0.5*2*3
  for (const auto& p : pts) EXPECT_EQ(p.normal, (Vec3{0, 0, 1}));
}

TEST(Quadrature, InterpolatedNormalsAreUnit) {
  const Vec3 v0{1, 0, 0}, v1{0, 1, 0}, v2{0, 0, 1};
  std::vector<octgb::geom::SurfacePoint> pts;
  octgb::geom::apply_rule_to_triangle(octgb::geom::dunavant_rule(3), v0, v1,
                                      v2, v0, v1, v2, pts);
  for (const auto& p : pts) EXPECT_NEAR(p.normal.norm(), 1.0, 1e-12);
}

// ---- meshes ----------------------------------------------------------------

TEST(Mesh, IcosahedronShape) {
  const auto m = octgb::geom::icosahedron();
  EXPECT_EQ(m.num_vertices(), 12u);
  EXPECT_EQ(m.num_triangles(), 20u);
  for (const auto& v : m.vertices) EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  EXPECT_EQ(octgb::geom::euler_characteristic(m), 2);
}

class IcosphereLevels : public ::testing::TestWithParam<int> {};

TEST_P(IcosphereLevels, TopologyAndGeometry) {
  const int level = GetParam();
  const auto& m = octgb::geom::icosphere(level);
  EXPECT_EQ(m.num_triangles(), 20u << (2 * level));
  EXPECT_EQ(octgb::geom::euler_characteristic(m), 2);
  for (const auto& v : m.vertices) EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  // Flat-facet area approaches 4π from below.
  EXPECT_LT(m.area(), 4.0 * std::numbers::pi);
  const double deficit = 1.0 - m.area() / (4.0 * std::numbers::pi);
  EXPECT_LT(deficit, 0.25 / (1 << level));
}

INSTANTIATE_TEST_SUITE_P(Levels, IcosphereLevels, ::testing::Range(0, 5));

TEST(Mesh, IcosphereCacheReturnsSameObject) {
  const auto& a = octgb::geom::icosphere(2);
  const auto& b = octgb::geom::icosphere(2);
  EXPECT_EQ(&a, &b);
}
