// Tests for the molecular surface sampler.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;
using surface::build_sphere_surface;
using surface::build_surface;
using surface::Surface;
using surface::SurfaceParams;

TEST(Surface, IsolatedSphereAreaIsExact) {
  // The polyhedral-deficit correction makes a full sphere integrate to
  // exactly 4πr² at any subdivision level.
  for (int level = 0; level <= 3; ++level) {
    for (double r : {1.0, 1.7, 3.5}) {
      const Surface s =
          build_sphere_surface({0, 0, 0}, r, {.subdivision = level});
      EXPECT_NEAR(s.total_area(), 4.0 * std::numbers::pi * r * r,
                  1e-9 * r * r)
          << "level=" << level << " r=" << r;
    }
  }
}

TEST(Surface, SphereNormalsAreRadialAndUnit) {
  const Surface s = build_sphere_surface({1, 2, 3}, 2.0, {.subdivision = 1});
  for (std::size_t k = 0; k < s.size(); ++k) {
    EXPECT_NEAR(s.normals[k].norm(), 1.0, 1e-12);
    const geom::Vec3 radial = (s.positions[k] - geom::Vec3{1, 2, 3});
    EXPECT_NEAR(radial.norm(), 2.0, 1e-9);  // points on the sphere
    EXPECT_NEAR(radial.normalized().dot(s.normals[k]), 1.0, 1e-12);
  }
}

TEST(Surface, BornIntegralOfIsolatedSphereRecoversRadius) {
  // (1/4π) Σ w (r−x)·n/|r−x|⁶ must equal 1/R³ for a sphere of radius R —
  // this is the identity the whole r⁶ method rests on.
  for (double R : {1.2, 1.7, 2.5}) {
    const Surface s =
        build_sphere_surface({0, 0, 0}, R, {.subdivision = 2});
    double integral = 0.0;
    for (std::size_t k = 0; k < s.size(); ++k) {
      const geom::Vec3 d = s.positions[k];  // atom at origin
      integral += s.weights[k] * d.dot(s.normals[k]) / std::pow(d.norm2(), 3);
    }
    const double r_est =
        1.0 / std::cbrt(integral / (4.0 * std::numbers::pi));
    EXPECT_NEAR(r_est, R, 1e-9) << "R=" << R;
  }
}

TEST(Surface, QuadratureDegreeMultipliesPointCount) {
  const Surface d1 = build_sphere_surface({0, 0, 0}, 1.5,
                                          {.subdivision = 1, .quad_degree = 1});
  const Surface d2 = build_sphere_surface({0, 0, 0}, 1.5,
                                          {.subdivision = 1, .quad_degree = 2});
  EXPECT_EQ(d2.size(), 3 * d1.size());  // 3-point rule vs 1-point rule
}

TEST(Surface, BuriedPointsAreCulled) {
  // Two overlapping spheres: total exposed area < sum of full areas, and
  // every surviving point lies outside the other sphere.
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 1.7, 0, mol::Element::C});
  m.add_atom({{1.5, 0, 0}, 1.7, 0, mol::Element::C});
  const Surface s = build_surface(m, {.subdivision = 2});
  const double full = 2.0 * 4.0 * std::numbers::pi * 1.7 * 1.7;
  EXPECT_LT(s.total_area(), 0.95 * full);
  EXPECT_GT(s.total_area(), 0.40 * full);
  for (std::size_t k = 0; k < s.size(); ++k) {
    const auto owner = s.owner_atom[k];
    const auto other = 1 - owner;
    EXPECT_GE(geom::dist(s.positions[k], m.atom(other).pos),
              0.99 * 1.7 - 1e-9);
  }
}

TEST(Surface, DisjointAtomsKeepFullSpheres) {
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 1.5, 0, mol::Element::C});
  m.add_atom({{100, 0, 0}, 1.5, 0, mol::Element::C});
  const Surface s = build_surface(m, {.subdivision = 1});
  EXPECT_NEAR(s.total_area(), 2 * 4.0 * std::numbers::pi * 1.5 * 1.5, 1e-8);
}

TEST(Surface, FullyBuriedAtomContributesNothing) {
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 1.0, 0, mol::Element::H});  // inside the big one
  m.add_atom({{0, 0, 0}, 3.0, 0, mol::Element::S});
  const Surface s = build_surface(m, {.subdivision = 1});
  for (std::size_t k = 0; k < s.size(); ++k)
    EXPECT_EQ(s.owner_atom[k], 1u) << "buried atom leaked a point";
  EXPECT_NEAR(s.total_area(), 4.0 * std::numbers::pi * 9.0, 1e-8);
}

TEST(Surface, ProteinSurfaceIsPlausible) {
  const auto m = mol::generate_protein({.target_atoms = 500, .seed = 11});
  const Surface s = build_surface(m, {.subdivision = 1});
  EXPECT_GT(s.size(), m.size());  // several q-points per exposed atom
  // Exposed area below the sum of all spheres, above a single sphere.
  double full = 0;
  for (const auto& a : m.atoms())
    full += 4.0 * std::numbers::pi * a.radius * a.radius;
  EXPECT_LT(s.total_area(), full);
  EXPECT_GT(s.total_area(), 0.02 * full);
  // All weights positive; owners valid.
  for (std::size_t k = 0; k < s.size(); ++k) {
    EXPECT_GT(s.weights[k], 0.0);
    EXPECT_LT(s.owner_atom[k], m.size());
  }
}

TEST(Surface, HigherSubdivisionConvergesToSameArea) {
  const auto m = mol::generate_protein({.target_atoms = 200, .seed = 13});
  const Surface coarse = build_surface(m, {.subdivision = 1});
  const Surface fine = build_surface(m, {.subdivision = 3});
  EXPECT_NEAR(coarse.total_area(), fine.total_area(),
              0.05 * fine.total_area());
}

TEST(Surface, FootprintTracksSize) {
  const auto m = mol::generate_protein({.target_atoms = 300, .seed = 17});
  const Surface s1 = build_surface(m, {.subdivision = 0});
  const Surface s2 = build_surface(m, {.subdivision = 2});
  EXPECT_GT(s2.footprint_bytes(), s1.footprint_bytes());
  EXPECT_GE(s1.footprint_bytes(),
            s1.size() * (2 * sizeof(geom::Vec3) + sizeof(double)));
}
