// Tests for the perf module: run statistics, work counters, and the
// machine/network model.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "octgb/perf/counters.hpp"
#include "octgb/perf/machine_model.hpp"
#include "octgb/perf/stats.hpp"
#include "octgb/perf/topology.hpp"

using namespace octgb::perf;

// ---- RunStats --------------------------------------------------------------

TEST(RunStats, EmptyIsZeroed) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunStats, SingleSample) {
  RunStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunStats, MatchesClosedFormMoments) {
  RunStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance with n−1 = 7: Σ(x−5)² = 32 → 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunStats, WelfordIsNumericallyStableForLargeOffsets) {
  RunStats s;
  const double base = 1e12;
  for (int i = 0; i < 1000; ++i) s.add(base + (i % 5));
  EXPECT_NEAR(s.mean(), base + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0, 0.05);  // variance of {0..4} uniform-ish
}

TEST(PercentError, SignsAndZeroReference) {
  EXPECT_DOUBLE_EQ(percent_error(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(-110.0, -100.0), -10.0);
  EXPECT_DOUBLE_EQ(percent_error(90.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(percent_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(percent_error(1.0, 0.0)));
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += i;
  const double first = t.seconds();
  EXPECT_GT(first, 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), first + 1.0);
}

// ---- WorkCounters ------------------------------------------------------------

TEST(WorkCounters, AccumulateFieldwise) {
  WorkCounters a, b;
  a.born_exact = 10;
  a.epol_bins = 3;
  a.steals = 1;
  b.born_exact = 5;
  b.epol_exact = 7;
  a += b;
  EXPECT_EQ(a.born_exact, 15u);
  EXPECT_EQ(a.epol_exact, 7u);
  EXPECT_EQ(a.epol_bins, 3u);
  EXPECT_EQ(a.steals, 1u);
}

// operator+= must cover every field. Assign a distinct value to each of
// the kFieldCount counters, sum, and check each field doubled; the
// static count makes this fail (alongside the static_assert in
// counters.hpp) if a field is added without extending the list here.
TEST(WorkCounters, SumCoversEveryField) {
  static_assert(WorkCounters::kFieldCount == 12,
                "new WorkCounters field: extend this test's field list");
  WorkCounters a;
  std::uint64_t* const fields[WorkCounters::kFieldCount] = {
      &a.born_exact, &a.born_approx, &a.born_visits, &a.push_visits,
      &a.push_atoms, &a.epol_exact,  &a.epol_bins,   &a.epol_visits,
      &a.pairlist_pairs, &a.grid_cells, &a.spawns, &a.steals};
  for (std::size_t i = 0; i < WorkCounters::kFieldCount; ++i)
    *fields[i] = (i + 1) * 1000 + i;  // all distinct, all nonzero
  WorkCounters b = a;
  a += b;
  for (std::size_t i = 0; i < WorkCounters::kFieldCount; ++i)
    EXPECT_EQ(*fields[i], 2 * ((i + 1) * 1000 + i)) << "field index " << i;
}

// Same guard for the octree-construction counters.
TEST(TreeBuildCounters, SumCoversEveryField) {
  static_assert(TreeBuildCounters::kFieldCount == 8,
                "new TreeBuildCounters field: extend this test's field list");
  TreeBuildCounters a;
  std::uint64_t* const fields[TreeBuildCounters::kFieldCount] = {
      &a.morton_builds, &a.legacy_builds,  &a.points_sorted, &a.sort_passes,
      &a.nodes_emitted, &a.leaves_emitted, &a.resorts,       &a.resort_moved};
  for (std::size_t i = 0; i < TreeBuildCounters::kFieldCount; ++i)
    *fields[i] = (i + 1) * 1000 + i;  // all distinct, all nonzero
  TreeBuildCounters b = a;
  a += b;
  for (std::size_t i = 0; i < TreeBuildCounters::kFieldCount; ++i)
    EXPECT_EQ(*fields[i], 2 * ((i + 1) * 1000 + i)) << "field index " << i;
}

TEST(WorkCounters, TotalInteractionsExcludesTraversalAndScheduler) {
  // Interaction counters are included...
  WorkCounters w;
  w.born_exact = 1;
  w.born_approx = 2;
  w.epol_exact = 3;
  w.epol_bins = 4;
  w.pairlist_pairs = 5;
  w.grid_cells = 6;
  EXPECT_EQ(w.total_interactions(), 21u);
  // ...and the six traversal/bookkeeping counters are deliberately not
  // (see the doc comment on total_interactions()).
  w.born_visits = 1000;
  w.push_visits = 1000;
  w.push_atoms = 1000;
  w.epol_visits = 1000;
  w.spawns = 1000;
  w.steals = 1000;
  EXPECT_EQ(w.total_interactions(), 21u);
}

TEST(WorkCounters, TotalInteractionsSumsKernelWork) {
  WorkCounters w;
  w.born_exact = 1;
  w.born_approx = 2;
  w.epol_exact = 3;
  w.epol_bins = 4;
  w.pairlist_pairs = 5;
  w.grid_cells = 6;
  w.born_visits = 100;  // traversal, not interaction
  EXPECT_EQ(w.total_interactions(), 21u);
}

// ---- MachineModel ---------------------------------------------------------------

TEST(MachineModel, TableIConstants) {
  MachineModel m;
  EXPECT_DOUBLE_EQ(m.clock_hz, 3.33e9);
  EXPECT_EQ(m.cores_per_node, 12);
  EXPECT_EQ(m.sockets_per_node, 2);
  EXPECT_DOUBLE_EQ(m.l3_bytes, 12.0 * 1024 * 1024);
}

TEST(MachineModel, ComputeSecondsLinearInWork) {
  MachineModel m;
  WorkCounters w1, w2;
  w1.epol_exact = 1000000;
  w2.epol_exact = 2000000;
  const double t1 = m.compute_seconds(w1, 0.0, 1, false);
  const double t2 = m.compute_seconds(w2, 0.0, 1, false);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-15);
  EXPECT_NEAR(t1, 1e6 * m.cyc_epol_exact / m.clock_hz, 1e-12);
}

TEST(MachineModel, ApproxMathSpeedsUpInteractionsOnly) {
  MachineModel m;
  WorkCounters w;
  w.born_exact = 1000000;
  w.born_visits = 1000000;  // traversal is not accelerated
  const double exact = m.compute_seconds(w, 0.0, 1, false);
  const double fast = m.compute_seconds(w, 0.0, 1, true);
  EXPECT_LT(fast, exact);
  // Lower bound: only the interaction share shrinks.
  const double interact = 1e6 * m.cyc_born_exact / m.clock_hz;
  const double traverse = 1e6 * m.cyc_born_visit / m.clock_hz;
  EXPECT_NEAR(fast, interact / m.approx_math_speedup + traverse, 1e-12);
}

TEST(MachineModel, CacheFactorMonotoneAndBounded) {
  MachineModel m;
  double prev = 0.0;
  for (double ws : {1e5, 1e6, 1e7, 1e8, 1e9, 1e12}) {
    const double f = m.cache_factor(ws, 6);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 1.0);
    EXPECT_LE(f, m.cache_miss_penalty);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(m.cache_factor(0.0, 6), 1.0);
}

TEST(MachineModel, CommSecondsPricesTrafficByLocality) {
  MachineModel m;
  CommCounters intra, inter;
  intra.messages_intranode = 10;
  intra.bytes_intranode = 1 << 20;
  inter.messages_internode = 10;
  inter.bytes_internode = 1 << 20;
  // Inter-node traffic is strictly more expensive at equal volume.
  EXPECT_GT(comm_seconds(m, inter), comm_seconds(m, intra));
  EXPECT_DOUBLE_EQ(comm_seconds(m, CommCounters{}), 0.0);
}

TEST(MachineModel, CommCountersAccumulate) {
  CommCounters a, b;
  a.bytes_internode = 100;
  a.collectives = 1;
  b.bytes_internode = 50;
  b.messages_intranode = 2;
  a += b;
  EXPECT_EQ(a.bytes_internode, 150u);
  EXPECT_EQ(a.messages_intranode, 2u);
  EXPECT_EQ(a.collectives, 1u);
}

// ---- LocalityCounters ------------------------------------------------------

// Same operator+= coverage guard as WorkCounters / TreeBuildCounters.
TEST(LocalityCounters, SumCoversEveryField) {
  static_assert(LocalityCounters::kFieldCount == 6,
                "new LocalityCounters field: extend this test's field list");
  LocalityCounters a;
  std::uint64_t* const fields[LocalityCounters::kFieldCount] = {
      &a.runs,          &a.run_owners,       &a.chunks,
      &a.baseline_chunks, &a.prefetch_batches, &a.numa_touch_passes};
  for (std::size_t i = 0; i < LocalityCounters::kFieldCount; ++i)
    *fields[i] = (i + 1) * 1000 + i;  // all distinct, all nonzero
  LocalityCounters b = a;
  a += b;
  for (std::size_t i = 0; i < LocalityCounters::kFieldCount; ++i)
    EXPECT_EQ(*fields[i], 2 * ((i + 1) * 1000 + i)) << "field index " << i;
}

TEST(LocalityCounters, MeanRunLengthIsOwnersPerRun) {
  LocalityCounters l;
  EXPECT_DOUBLE_EQ(l.mean_run_length(), 0.0);
  l.runs = 4;
  l.run_owners = 10;
  EXPECT_DOUBLE_EQ(l.mean_run_length(), 2.5);
}

// ---- CpuTopology (sysfs parsing with golden fixture trees) -----------------

namespace {

namespace fs = std::filesystem;

/// Write one sysfs attribute file, creating parents.
void write_attr(const fs::path& path, const std::string& value) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << value << "\n";
}

/// A throwaway fixture root under the system temp dir, removed on scope
/// exit.
struct FixtureRoot {
  fs::path root;
  explicit FixtureRoot(const char* name)
      : root(fs::temp_directory_path() /
             (std::string("octgb_topo_") + name + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~FixtureRoot() { fs::remove_all(root); }
  fs::path cpu(int i) const { return root / ("cpu" + std::to_string(i)); }
};

}  // namespace

TEST(CpuTopology, SingleSocketSmtFixtureParses) {
  FixtureRoot fx("smt");
  // 4 logical cpus: one socket, one shared L3, SMT pairs (0,2) and (1,3).
  for (int i = 0; i < 4; ++i) {
    write_attr(fx.cpu(i) / "topology" / "physical_package_id", "0");
    write_attr(fx.cpu(i) / "cache" / "index3" / "shared_cpu_list", "0-3");
    write_attr(fx.cpu(i) / "topology" / "thread_siblings_list",
               i % 2 == 0 ? "0,2" : "1,3");
  }
  write_attr(fx.cpu(0) / "cache" / "index3" / "size", "8192K");
  const CpuTopology t = discover_topology(fx.root.string());
  EXPECT_FALSE(t.flat_fallback);
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.sockets, 1);
  EXPECT_EQ(t.l3_domains, 1);
  EXPECT_EQ(t.smt_groups, 2);
  EXPECT_EQ(t.l3_bytes, 8192u * 1024u);
  EXPECT_TRUE(t.same_l3(0, 3));
  EXPECT_TRUE(t.same_socket(1, 2));
}

TEST(CpuTopology, TwoSocketFixtureSplitsDomains) {
  FixtureRoot fx("2s");
  // 2 sockets × 2 cores, one L3 per socket, no SMT.
  for (int i = 0; i < 4; ++i) {
    const bool second = i >= 2;
    write_attr(fx.cpu(i) / "topology" / "physical_package_id",
               second ? "1" : "0");
    write_attr(fx.cpu(i) / "cache" / "index3" / "shared_cpu_list",
               second ? "2-3" : "0-1");
    write_attr(fx.cpu(i) / "topology" / "thread_siblings_list",
               std::to_string(i));
  }
  write_attr(fx.cpu(0) / "cache" / "index3" / "size", "12288K");
  const CpuTopology t = discover_topology(fx.root.string());
  EXPECT_FALSE(t.flat_fallback);
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.sockets, 2);
  EXPECT_EQ(t.l3_domains, 2);
  EXPECT_EQ(t.smt_groups, 4);
  EXPECT_EQ(t.l3_bytes, 12288u * 1024u);
  EXPECT_TRUE(t.same_l3(0, 1));
  EXPECT_FALSE(t.same_l3(1, 2));
  EXPECT_FALSE(t.same_socket(0, 3));
  // MachineModel overlay: discovered shape, Table I cycle costs.
  const MachineModel m = MachineModel::from_topology(t);
  EXPECT_EQ(m.cores_per_node, 4);
  EXPECT_EQ(m.sockets_per_node, 2);
  EXPECT_DOUBLE_EQ(m.l3_bytes, 12288.0 * 1024.0);
  EXPECT_DOUBLE_EQ(m.cyc_spawn, MachineModel{}.cyc_spawn);
}

TEST(CpuTopology, MissingCacheInfoDegradesToSocketGranularity) {
  FixtureRoot fx("nocache");
  // Container case: package ids exposed, cache directories absent. Must
  // not throw; L3 domains degrade to one per socket.
  for (int i = 0; i < 4; ++i)
    write_attr(fx.cpu(i) / "topology" / "physical_package_id",
               i < 2 ? "0" : "1");
  const CpuTopology t = discover_topology(fx.root.string());
  EXPECT_FALSE(t.flat_fallback);
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.sockets, 2);
  EXPECT_EQ(t.l3_domains, 2);  // socket-granularity fallback
  EXPECT_EQ(t.smt_groups, 4);  // per-cpu fallback
  EXPECT_EQ(t.l3_bytes, 0u);
  EXPECT_TRUE(t.same_l3(0, 1));
  EXPECT_FALSE(t.same_l3(0, 2));
}

TEST(CpuTopology, EmptyRootFallsBackFlat) {
  FixtureRoot fx("empty");
  const CpuTopology t = discover_topology(fx.root.string(), /*fallback=*/3);
  EXPECT_TRUE(t.flat_fallback);
  EXPECT_EQ(t.num_cpus(), 3);
  EXPECT_EQ(t.sockets, 1);
  EXPECT_EQ(t.l3_domains, 1);
  EXPECT_TRUE(t.same_l3(0, 2));
  // Out-of-range cpu ids clamp instead of crashing.
  EXPECT_TRUE(t.same_socket(0, 99));
}

TEST(CpuTopology, HostDiscoveryYieldsSaneSingleton) {
  const CpuTopology& t = topology();
  EXPECT_GE(t.num_cpus(), 1);
  EXPECT_GE(t.sockets, 1);
  EXPECT_GE(t.l3_domains, t.sockets > 0 ? 1 : 0);
  EXPECT_EQ(&topology(), &t);  // one singleton
}

TEST(CpuTopology, DomainTouchZeroesExactlyOnMultiSocket) {
  const CpuTopology two = [] {
    CpuTopology t = flat_topology(4);
    t.flat_fallback = false;
    t.sockets = 2;
    t.l3_domains = 2;
    for (int i = 0; i < 4; ++i) t.cpus[static_cast<std::size_t>(i)] =
        CpuTopology::Cpu{i, i < 2 ? 0 : 1, i < 2 ? 0 : 1, i};
    return t;
  }();
  std::vector<double> data(100, 1.0);
  const std::size_t boundary[] = {0, 30, 60, 100};
  const int domain[] = {0, 1, 0};
  EXPECT_TRUE(octgb::perf::touch_zero_by_domain(data, boundary, domain, two));
  for (double v : data) EXPECT_EQ(v, 0.0);
  // Single-socket topologies skip the pass entirely.
  std::vector<double> one(10, 1.0);
  const std::size_t b1[] = {0, 10};
  const int d1[] = {0};
  EXPECT_FALSE(
      octgb::perf::touch_zero_by_domain(one, b1, d1, flat_topology(2)));
  EXPECT_EQ(one[0], 1.0);
  // Malformed boundaries are rejected, not trusted.
  const std::size_t bad[] = {5, 10};
  EXPECT_FALSE(octgb::perf::touch_zero_by_domain(one, bad, d1, two));
}
