// Cross-cutting determinism and reproducibility tests: the whole
// reproduction rests on bit-stable synthetic inputs and schedule-stable
// results.

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/core/engine.hpp"
#include "octgb/core/hybrid.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/mol/pdb.hpp"
#include "octgb/mol/zdock.hpp"
#include "octgb/sim/cluster.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/util/rng.hpp"

using namespace octgb;

namespace {

/// Order-sensitive digest of a molecule's geometry and charges.
std::uint64_t digest(const mol::Molecule& m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits;
    h *= 0x100000001b3ULL;
  };
  for (const auto& a : m.atoms()) {
    mix(a.pos.x);
    mix(a.pos.y);
    mix(a.pos.z);
    mix(a.charge);
    mix(a.radius);
  }
  return h;
}

}  // namespace

TEST(Determinism, BenchmarkMoleculesAreBitStableAcrossCalls) {
  for (const char* name : {"1PPE_l_b", "1WQ1_l_b", "1BGX_l_b"}) {
    const auto a = mol::make_benchmark_molecule(name);
    const auto b = mol::make_benchmark_molecule(name);
    EXPECT_EQ(digest(a), digest(b)) << name;
  }
}

TEST(Determinism, DifferentNamesGiveDifferentMolecules) {
  const auto a = mol::make_benchmark_molecule("1PPE_l_b");
  const auto b = mol::make_benchmark_molecule("1PPE_r_b", a.size());
  EXPECT_NE(digest(a), digest(b));
}

TEST(Determinism, VirusShellsAreBitStable) {
  EXPECT_EQ(digest(mol::make_cmv(0.01)), digest(mol::make_cmv(0.01)));
  EXPECT_EQ(digest(mol::make_btv(0.001)), digest(mol::make_btv(0.001)));
  EXPECT_NE(digest(mol::make_cmv(0.01)), digest(mol::make_btv(0.001)));
}

TEST(Determinism, SurfaceSamplingIsDeterministic) {
  const auto m = mol::generate_protein({.target_atoms = 300, .seed = 3});
  const auto s1 = surface::build_surface(m);
  const auto s2 = surface::build_surface(m);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.positions[i], s2.positions[i]);
    EXPECT_EQ(s1.weights[i], s2.weights[i]);
  }
}

TEST(Determinism, SerialEngineIsBitDeterministic) {
  const auto m = mol::generate_protein({.target_atoms = 350, .seed = 5});
  const auto surf = surface::build_surface(m);
  core::GBEngine engine(m, surf);
  const auto r1 = engine.compute();
  const auto r2 = engine.compute();
  EXPECT_EQ(r1.epol, r2.epol);  // exact bit equality, serial path
  EXPECT_EQ(r1.born, r2.born);
}

TEST(Determinism, BatchedAndScalarEnginesAreBitDeterministic) {
  // The SoA batched kernels (the default) must be exactly as reproducible
  // as the scalar path they replaced: repeated serial runs are bitwise
  // identical for both kernel kinds.
  const auto m = mol::generate_protein({.target_atoms = 350, .seed = 5});
  const auto surf = surface::build_surface(m);
  for (core::KernelKind kind :
       {core::KernelKind::Scalar, core::KernelKind::Batched}) {
    core::EngineConfig cfg;
    cfg.approx.kernel = kind;
    core::GBEngine engine(m, surf, cfg);
    const auto r1 = engine.compute();
    const auto r2 = engine.compute();
    EXPECT_EQ(r1.epol, r2.epol);
    EXPECT_EQ(r1.born, r2.born);
  }
}

/// Batched path across hybrid rank/thread shapes. Single-threaded ranks
/// ((P, p) with p = 1) are bitwise reproducible run to run: rank work is
/// serial and the mpp collectives reduce in fixed rank order. Shapes with
/// p > 1 accumulate into the shared s-arrays in work-stealing order, so —
/// exactly like the scalar path — they are reproducible only up to
/// reassociation; all shapes must agree with the serial engine to the
/// same tight tolerance the scalar hybrid tests use.
TEST(Determinism, BatchedHybridIsDeterministicAcrossRankShapes) {
  const auto m = mol::generate_protein({.target_atoms = 350, .seed = 5});
  const auto surf = surface::build_surface(m);
  core::EngineConfig cfg;
  cfg.approx.kernel = core::KernelKind::Batched;
  core::GBEngine engine(m, surf, cfg);
  const auto serial = engine.compute();

  const std::pair<int, int> shapes[] = {{1, 1}, {2, 2}, {4, 1}};
  for (const auto& [P, p] : shapes) {
    core::HybridConfig hc;
    hc.ranks = P;
    hc.threads_per_rank = p;
    const auto r1 = core::run_hybrid(engine, hc);
    const auto r2 = core::run_hybrid(engine, hc);
    if (p == 1) {
      EXPECT_EQ(r1.epol, r2.epol) << "P=" << P << " p=" << p;
      EXPECT_EQ(r1.born, r2.born) << "P=" << P << " p=" << p;
    } else {
      EXPECT_NEAR(r1.epol, r2.epol, 1e-11 * std::abs(r2.epol))
          << "P=" << P << " p=" << p;
    }
    EXPECT_NEAR(r1.epol, serial.epol, 1e-9 * std::abs(serial.epol))
        << "P=" << P << " p=" << p;
    ASSERT_EQ(r1.born.size(), serial.born.size());
    for (std::size_t i = 0; i < r1.born.size(); ++i)
      EXPECT_NEAR(r1.born[i], serial.born[i],
                  1e-9 * serial.born[i] + 1e-12)
          << "P=" << P << " p=" << p << " atom " << i;
  }
}

TEST(Determinism, BatchedHybridWorkCountersMatchScalarHybrid) {
  // Kernel choice changes arithmetic layout, never traversal decisions:
  // the per-rank interaction counts must be identical scalar vs batched.
  const auto m = mol::generate_protein({.target_atoms = 300, .seed = 9});
  const auto surf = surface::build_surface(m);
  core::EngineConfig scalar_cfg, batched_cfg;
  scalar_cfg.approx.kernel = core::KernelKind::Scalar;
  batched_cfg.approx.kernel = core::KernelKind::Batched;
  core::GBEngine scalar_engine(m, surf, scalar_cfg);
  core::GBEngine batched_engine(m, surf, batched_cfg);
  core::HybridConfig hc;
  hc.ranks = 4;
  const auto rs = core::run_hybrid(scalar_engine, hc);
  const auto rb = core::run_hybrid(batched_engine, hc);
  for (int r = 0; r < hc.ranks; ++r) {
    EXPECT_EQ(rs.work_per_rank[r].born_exact,
              rb.work_per_rank[r].born_exact) << "rank " << r;
    EXPECT_EQ(rs.work_per_rank[r].epol_exact,
              rb.work_per_rank[r].epol_exact) << "rank " << r;
  }
}

TEST(Determinism, SimulatedClusterIsBitDeterministic) {
  const auto m = mol::generate_protein({.target_atoms = 350, .seed = 5});
  const auto surf = surface::build_surface(m);
  core::GBEngine engine(m, surf);
  sim::ClusterConfig cfg;
  cfg.ranks = 7;
  const auto r1 = sim::simulate_cluster(engine, cfg);
  const auto r2 = sim::simulate_cluster(engine, cfg);
  EXPECT_EQ(r1.epol, r2.epol);
  EXPECT_EQ(r1.total_seconds, r2.total_seconds);
  for (int r = 0; r < 7; ++r) {
    EXPECT_EQ(r1.work_per_rank[r].born_exact,
              r2.work_per_rank[r].born_exact);
    EXPECT_EQ(r1.work_per_rank[r].epol_bins, r2.work_per_rank[r].epol_bins);
  }
}

TEST(Determinism, JitterIsSeededNotRandom) {
  const auto m = mol::generate_protein({.target_atoms = 200, .seed = 6});
  const auto surf = surface::build_surface(m);
  core::GBEngine engine(m, surf);
  sim::ClusterConfig cfg;
  cfg.ranks = 4;
  const auto base = sim::simulate_cluster(engine, cfg);
  EXPECT_EQ(sim::jittered_total_seconds(base, cfg, 42),
            sim::jittered_total_seconds(base, cfg, 42));
  EXPECT_NE(sim::jittered_total_seconds(base, cfg, 42),
            sim::jittered_total_seconds(base, cfg, 43));
}

TEST(Determinism, PdbTextIsByteStable) {
  const auto m = mol::generate_protein({.target_atoms = 120, .seed = 7});
  std::ostringstream a, b;
  mol::write_pdb(m, a);
  mol::write_pdb(m, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Determinism, ChargeAssignmentIsPure) {
  // protein_partial_charge must be a pure function of its arguments.
  EXPECT_EQ(mol::protein_partial_charge("CA", "ALA"),
            mol::protein_partial_charge("CA", "ALA"));
  EXPECT_EQ(mol::protein_partial_charge("NZ", "LYS"),
            mol::protein_partial_charge("NZ", "LYS"));
}

TEST(Determinism, GeneratorsCoverAllTwentyResidueFamilies) {
  // A large molecule should sample every template (probabilistic but with
  // margin: 19 templates, ~600 residues).
  const auto m = mol::generate_protein({.target_atoms = 12000, .seed = 8});
  ASSERT_TRUE(m.has_labels());
  std::set<std::string> seen;
  for (const auto& l : m.labels()) seen.insert(l.residue_name);
  EXPECT_GE(seen.size(), 15u);
  // Spot-check the newer templates appear.
  EXPECT_TRUE(seen.count("TRP"));
  EXPECT_TRUE(seen.count("ARG"));
  EXPECT_TRUE(seen.count("VAL"));
}
