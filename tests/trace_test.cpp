// Tests for the octgb::trace observability layer: span nesting and
// ordering, thread-safety under the ws scheduler (this binary also runs
// in the TSan CI job), exporter round-trips against golden output, and
// the zero-allocation no-op guarantee when tracing is disabled.
//
// The Tracer is a process-wide singleton, so every test starts from a
// known state via TraceTestBase (disable + clear) and leaves tracing
// disabled behind it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "octgb/trace/metrics.hpp"
#include "octgb/trace/trace.hpp"
#include "octgb/ws/scheduler.hpp"

using namespace octgb;

// ---- allocation counter (for the disabled-tracing no-op guarantee) -------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// Our replacement operator new above is malloc-backed, so free() is the
// matching deallocator; GCC warns because it can't see across the pair.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// ---- tiny parser for the chrome://tracing JSON the Tracer writes ---------

namespace {

struct ParsedEvent {
  std::string name;
  std::string ph;
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

// The writer emits one event object per line between the traceEvents
// brackets, so a line-oriented field scraper is enough (and keeps the
// test independent of a real JSON library).
std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  std::istringstream in(json);
  std::string line;
  auto field = [](const std::string& l, const std::string& key)
      -> std::string {
    const auto at = l.find("\"" + key + "\":");
    if (at == std::string::npos) return "";
    auto start = at + key.size() + 3;
    if (l[start] == '"') {
      ++start;
      return l.substr(start, l.find('"', start) - start);
    }
    auto end = start;
    while (end < l.size() && l[end] != ',' && l[end] != '}') ++end;
    return l.substr(start, end - start);
  };
  while (std::getline(in, line)) {
    if (line.find("\"ph\":") == std::string::npos) continue;
    ParsedEvent e;
    e.name = field(line, "name");
    e.ph = field(line, "ph");
    const std::string pid = field(line, "pid");
    const std::string tid = field(line, "tid");
    const std::string ts = field(line, "ts");
    const std::string dur = field(line, "dur");
    if (!pid.empty()) e.pid = std::atoi(pid.c_str());
    if (!tid.empty()) e.tid = std::atoi(tid.c_str());
    if (!ts.empty()) e.ts_us = std::atof(ts.c_str());
    if (!dur.empty()) e.dur_us = std::atof(dur.c_str());
    out.push_back(std::move(e));
  }
  return out;
}

std::string export_trace() {
  std::ostringstream os;
  trace::Tracer::instance().write_chrome_trace(os);
  return os.str();
}

const ParsedEvent* find_event(const std::vector<ParsedEvent>& ev,
                              const std::string& name) {
  for (const auto& e : ev)
    if (e.name == name) return &e;
  return nullptr;
}

class TraceTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::Tracer::instance().set_enabled(false);
    trace::Tracer::instance().set_max_events_per_thread(std::size_t{1}
                                                        << 20);
    trace::Tracer::instance().clear();
  }
  void TearDown() override {
    trace::Tracer::instance().set_enabled(false);
    trace::Tracer::instance().clear();
  }
};

}  // namespace

// ---- span recording ------------------------------------------------------

using TraceSpan = TraceTestBase;

TEST_F(TraceSpan, NestedSpansAreContainedAndOrdered) {
  trace::Tracer::instance().set_enabled(true);
  {
    OCTGB_SPAN("test.outer");
    {
      OCTGB_SPAN("test.inner.first");
    }
    {
      OCTGB_SPAN("test.inner.second");
    }
  }
  trace::Tracer::instance().set_enabled(false);

  EXPECT_EQ(trace::Tracer::instance().event_count(), 3u);
  const auto ev = parse_events(export_trace());
  const auto* outer = find_event(ev, "test.outer");
  const auto* first = find_event(ev, "test.inner.first");
  const auto* second = find_event(ev, "test.inner.second");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(outer->ph, "X");

  // Containment: both children start and end inside the parent.
  EXPECT_LE(outer->ts_us, first->ts_us);
  EXPECT_LE(outer->ts_us, second->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, first->ts_us + first->dur_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, second->ts_us + second->dur_us);
  // Ordering: first ends before second begins.
  EXPECT_LE(first->ts_us + first->dur_us, second->ts_us);
  // Same thread → same track.
  EXPECT_EQ(first->pid, second->pid);
  EXPECT_EQ(first->tid, second->tid);
}

TEST_F(TraceSpan, CounterAndInstantEventsRoundTrip) {
  trace::Tracer::instance().set_enabled(true);
  trace::counter("test.bytes", 12345.0);
  trace::instant("test.marker");
  trace::Tracer::instance().set_enabled(false);

  const std::string json = export_trace();
  const auto ev = parse_events(json);
  const auto* c = find_event(ev, "test.bytes");
  const auto* i = find_event(ev, "test.marker");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(c->ph, "C");
  EXPECT_EQ(i->ph, "i");
  EXPECT_NE(json.find("\"value\":12345"), std::string::npos);
}

TEST_F(TraceSpan, VirtualThreadScopeReattributesPid) {
  trace::Tracer::instance().set_enabled(true);
  {
    OCTGB_SPAN("test.host");
  }
  {
    trace::VirtualThreadScope rank(7, "rank7 (sim)");
    OCTGB_SPAN("test.virtual");
  }
  {
    OCTGB_SPAN("test.host.after");
  }
  trace::Tracer::instance().set_enabled(false);

  const std::string json = export_trace();
  const auto ev = parse_events(json);
  const auto* host = find_event(ev, "test.host");
  const auto* virt = find_event(ev, "test.virtual");
  const auto* after = find_event(ev, "test.host.after");
  ASSERT_NE(host, nullptr);
  ASSERT_NE(virt, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(virt->pid, 7);
  EXPECT_NE(host->pid, 7);
  // The override is restored on scope exit.
  EXPECT_EQ(after->pid, host->pid);
  // The scope registered a display name for the virtual rank.
  EXPECT_NE(json.find("rank7 (sim)"), std::string::npos);
}

TEST_F(TraceSpan, PerThreadCapDropsAndCounts) {
  auto& tracer = trace::Tracer::instance();
  tracer.set_max_events_per_thread(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) trace::instant("test.flood");
  tracer.set_enabled(false);
  EXPECT_LE(tracer.event_count(), 4u);
  EXPECT_GE(tracer.dropped_count(), 6u);
}

// ---- disabled tracing: no events, no allocations -------------------------

using TraceDisabled = TraceTestBase;

TEST_F(TraceDisabled, RecordingCallsAreAllocationFreeNoOps) {
  ASSERT_FALSE(trace::enabled());
  const std::size_t events_before = trace::Tracer::instance().event_count();

  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    OCTGB_SPAN("test.disabled");
    trace::counter("test.disabled.counter", static_cast<double>(i));
    trace::instant("test.disabled.instant");
    trace::set_thread_identity(3, "r3");  // short: SSO, no heap either
  }
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs_after - allocs_before, 0u);
  EXPECT_EQ(trace::Tracer::instance().event_count(), events_before);
  EXPECT_EQ(trace::current_pid(), 0);
}

// ---- thread-safety under the work-stealing scheduler ---------------------

using TraceScheduler = TraceTestBase;

TEST_F(TraceScheduler, ConcurrentRecordingUnderWsScheduler) {
  trace::Tracer::instance().set_enabled(true);
  std::atomic<long> sum{0};
  {
    ws::Scheduler sched(4);
    for (int round = 0; round < 3; ++round) {
      sched.run([&] {
        OCTGB_SPAN("test.sched.root");
        ws::Scheduler::parallel_for(
            0, 2000, 16, [&](std::int64_t lo, std::int64_t hi) {
              OCTGB_SPAN("test.sched.leaf");
              long s = 0;
              for (auto i = lo; i < hi; ++i) s += i;
              sum += s;
              trace::instant("test.sched.tick");
            });
      });
    }
  }  // workers joined: export below is quiescent
  trace::Tracer::instance().set_enabled(false);

  EXPECT_EQ(sum.load(), 3L * (2000L * 1999L / 2));
  const auto ev = parse_events(export_trace());
  std::size_t leaves = 0, roots = 0;
  std::vector<int> tids;
  for (const auto& e : ev) {
    if (e.name == "test.sched.leaf") {
      ++leaves;
      tids.push_back(e.tid);
    }
    if (e.name == "test.sched.root") ++roots;
  }
  EXPECT_EQ(roots, 3u);
  EXPECT_GE(leaves, 3u * (2000u / 16u / 2u));  // every subrange recorded
  // All buffered events parsed back — none were torn or lost. (The
  // export also holds "M" track-name metadata lines; skip those.)
  std::size_t recorded = 0;
  for (const auto& e : ev)
    if (e.ph != "M") ++recorded;
  EXPECT_EQ(trace::Tracer::instance().event_count(), recorded);
}

// ---- metrics registry ----------------------------------------------------

using TraceMetrics = TraceTestBase;

TEST_F(TraceMetrics, ExactIntegerAndPromotionSemantics) {
  trace::MetricsRegistry m;
  // A count above 2^53 is not representable in a double: the registry
  // must keep it exact.
  const std::uint64_t big = (std::uint64_t{1} << 53) + 1;
  m.add("test.big", big);
  EXPECT_EQ(m.get_int("test.big"), big);
  EXPECT_NE(m.json().find(std::to_string(big)), std::string::npos);

  m.add("test.mixed", std::uint64_t{10});
  m.add("test.mixed", 0.5);  // promotes to real
  EXPECT_DOUBLE_EQ(m.get_real("test.mixed"), 10.5);

  m.set("test.big", std::uint64_t{1});
  EXPECT_EQ(m.get_int("test.big"), 1u);
  EXPECT_TRUE(m.contains("test.big"));
  EXPECT_FALSE(m.contains("test.absent"));
}

TEST_F(TraceMetrics, AddWorkCoversEveryCounterField) {
  perf::WorkCounters w;
  w.born_exact = 1;
  w.born_approx = 2;
  w.born_visits = 3;
  w.push_visits = 4;
  w.push_atoms = 5;
  w.epol_exact = 6;
  w.epol_bins = 7;
  w.epol_visits = 8;
  w.pairlist_pairs = 9;
  w.grid_cells = 10;
  w.spawns = 11;
  w.steals = 12;
  trace::MetricsRegistry m;
  m.add_work("rank0", w);
  // One metric per WorkCounters field (kFieldCount guards the struct).
  EXPECT_EQ(m.size(), perf::WorkCounters::kFieldCount);
  EXPECT_EQ(m.get_int("born.exact.rank0"), 1u);
  EXPECT_EQ(m.get_int("epol.bins.rank0"), 7u);
  EXPECT_EQ(m.get_int("sched.steals.rank0"), 12u);
  // Empty prefix → bare names; accumulation is field-wise.
  m.add_work("", w);
  m.add_work("", w);
  EXPECT_EQ(m.get_int("grid.cells"), 20u);
}

TEST_F(TraceMetrics, AddTreeBuildCoversEveryCounterField) {
  perf::TreeBuildCounters t;
  t.morton_builds = 1;
  t.legacy_builds = 2;
  t.points_sorted = 3;
  t.sort_passes = 4;
  t.nodes_emitted = 5;
  t.leaves_emitted = 6;
  t.resorts = 7;
  t.resort_moved = 8;
  trace::MetricsRegistry m;
  m.add_tree_build("atoms", t);
  // One metric per TreeBuildCounters field (kFieldCount guards the struct).
  EXPECT_EQ(m.size(), perf::TreeBuildCounters::kFieldCount);
  EXPECT_EQ(m.get_int("tree.build.morton.atoms"), 1u);
  EXPECT_EQ(m.get_int("tree.build.sort_passes.atoms"), 4u);
  EXPECT_EQ(m.get_int("tree.build.resort_moved.atoms"), 8u);
  m.add_tree_build("", t);
  m.add_tree_build("", t);
  EXPECT_EQ(m.get_int("tree.build.nodes"), 10u);
}

TEST_F(TraceMetrics, AddSimdFollowsTheKernelSchema) {
  trace::MetricsRegistry m;
  // One call per evaluation: lanes/mixed reflect the latest resolution
  // (set, not accumulated), the per-width eval counter accumulates.
  m.add_simd("", "v256", 4, false);
  EXPECT_EQ(m.get_int("kernel.simd.lanes"), 4u);
  EXPECT_EQ(m.get_int("kernel.simd.mixed"), 0u);
  EXPECT_EQ(m.get_int("kernel.simd.evals.v256"), 1u);
  m.add_simd("", "v256", 8, true);  // re-dial within one registry
  EXPECT_EQ(m.get_int("kernel.simd.lanes"), 8u);
  EXPECT_EQ(m.get_int("kernel.simd.mixed"), 1u);
  EXPECT_EQ(m.get_int("kernel.simd.evals.v256"), 2u);
  m.add_simd("rank0", "scalar", 0, false);
  EXPECT_EQ(m.get_int("kernel.simd.lanes.rank0"), 0u);
  EXPECT_EQ(m.get_int("kernel.simd.evals.scalar.rank0"), 1u);
  // Scoped names never bleed into the run totals.
  EXPECT_FALSE(m.contains("kernel.simd.evals.scalar"));
}

TEST_F(TraceMetrics, ExportersMatchGoldenOutputThroughFiles) {
  trace::MetricsRegistry m;
  perf::WorkCounters w;
  w.born_exact = 123456789;
  w.epol_exact = 42;
  m.add_work("rank1", w);
  perf::CommCounters c;
  c.bytes_internode = 4096;
  c.collectives = 3;
  m.add_comm("rank1", c);
  m.add_scheduler("rank1", 7, 2, 5, 9);
  m.set("time.total_s", 1.5);

  const std::string golden_json =
      "{\n"
      "  \"born.approx.rank1\": 0,\n"
      "  \"born.exact.rank1\": 123456789,\n"
      "  \"born.visits.rank1\": 0,\n"
      "  \"epol.bins.rank1\": 0,\n"
      "  \"epol.exact.rank1\": 42,\n"
      "  \"epol.visits.rank1\": 0,\n"
      "  \"grid.cells.rank1\": 0,\n"
      "  \"mpp.bytes.internode.rank1\": 4096,\n"
      "  \"mpp.bytes.intranode.rank1\": 0,\n"
      "  \"mpp.collectives.rank1\": 3,\n"
      "  \"mpp.msgs.internode.rank1\": 0,\n"
      "  \"mpp.msgs.intranode.rank1\": 0,\n"
      "  \"pairlist.pairs.rank1\": 0,\n"
      "  \"push.atoms.rank1\": 0,\n"
      "  \"push.visits.rank1\": 0,\n"
      "  \"sched.executed.rank1\": 9,\n"
      "  \"sched.spawns.rank1\": 7,\n"
      "  \"sched.steal_attempts.rank1\": 5,\n"
      "  \"sched.steals.rank1\": 2,\n"
      "  \"time.total_s\": 1.5\n"
      "}\n";
  EXPECT_EQ(m.json(), golden_json);

  // Round-trip both exporters through actual files.
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/octgb_metrics_golden.json";
  const std::string csv_path = dir + "/octgb_metrics_golden.csv";
  ASSERT_TRUE(m.save_json(json_path));
  ASSERT_TRUE(m.save_csv(csv_path));
  auto slurp = [](const std::string& path) {
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
  };
  EXPECT_EQ(slurp(json_path), golden_json);
  const std::string csv = slurp(csv_path);
  EXPECT_NE(csv.find("metric,value\n"), std::string::npos);
  EXPECT_NE(csv.find("born.exact.rank1,123456789\n"), std::string::npos);
  EXPECT_NE(csv.find("time.total_s,1.5\n"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST_F(TraceMetrics, MergeAccumulatesAcrossRegistries) {
  trace::MetricsRegistry a, b;
  a.add("test.n", std::uint64_t{5});
  b.add("test.n", std::uint64_t{7});
  b.set("test.r", 0.25);
  a.merge(b);
  EXPECT_EQ(a.get_int("test.n"), 12u);
  EXPECT_DOUBLE_EQ(a.get_real("test.r"), 0.25);
}

// ---- tracing never perturbs counters -------------------------------------

using TraceCounters = TraceTestBase;

TEST_F(TraceCounters, WorkCountersIdenticalTracedAndUntraced) {
  // The same deterministic workload must count identically with tracing
  // on and off — the acceptance criterion behind `--metrics-out` diffing.
  auto run_once = [] {
    perf::WorkCounters w;
    ws::Scheduler sched(2);
    sched.run([&] {
      std::atomic<std::uint64_t> ops{0};
      ws::Scheduler::parallel_for(0, 512, 8,
                                  [&](std::int64_t lo, std::int64_t hi) {
                                    OCTGB_SPAN("test.counters.body");
                                    ops += static_cast<std::uint64_t>(hi -
                                                                      lo);
                                  });
      w.born_exact = ops.load();
    });
    const auto st = sched.stats();
    w.spawns = st.spawns;
    return w.born_exact;
  };

  trace::Tracer::instance().set_enabled(false);
  const auto untraced = run_once();
  trace::Tracer::instance().set_enabled(true);
  const auto traced = run_once();
  trace::Tracer::instance().set_enabled(false);
  EXPECT_EQ(traced, untraced);
  EXPECT_GT(trace::Tracer::instance().event_count(), 0u);
}
