// Tests for the three-stage evaluation pipeline: Preprocessed artifacts
// (+ persistence), EvalScratch reuse, and the ScoringSession drivers
// (parameter re-evaluation, moved-atom updates, rigid pose streams in
// both Full and CrossScreen modes).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "octgb/core/engine.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/core/persist.hpp"
#include "octgb/core/session.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"

using namespace octgb;
using core::EvalScratch;
using core::GBEngine;
using core::ScoringSession;

namespace {

struct Problem {
  mol::Molecule molecule;
  surface::Surface surf;
  explicit Problem(std::size_t atoms, std::uint64_t seed = 61)
      : molecule(mol::generate_protein({.target_atoms = atoms, .seed = seed})),
        surf(surface::build_surface(molecule, {.subdivision = 1})) {}
};

/// Receptor + ligand complex with the ligand offset along +x; returns the
/// combined molecule and the ligand_begin split index.
struct Complex {
  mol::Molecule combined;
  std::size_t ligand_begin;
  Complex(std::size_t rec_atoms, std::size_t lig_atoms, double offset) {
    mol::Molecule rec =
        mol::generate_protein({.target_atoms = rec_atoms, .seed = 7});
    mol::Molecule lig =
        mol::generate_protein({.target_atoms = lig_atoms, .seed = 8});
    lig.transform(geom::RigidTransform::translate({offset, 0, 0}));
    for (const auto& a : rec.atoms()) combined.add_atom(a);
    ligand_begin = combined.size();
    for (const auto& a : lig.atoms()) combined.add_atom(a);
  }
};

bool same_counters(const perf::WorkCounters& a, const perf::WorkCounters& b) {
  return a.born_exact == b.born_exact && a.born_approx == b.born_approx &&
         a.epol_exact == b.epol_exact && a.epol_bins == b.epol_bins &&
         a.epol_visits == b.epol_visits && a.push_atoms == b.push_atoms;
}

}  // namespace

// ---- EvalScratch ------------------------------------------------------------

TEST(EvalScratch, WarmComputeMatchesColdWrapperBitForBit) {
  const Problem p(500);
  GBEngine engine(p.molecule, p.surf);
  const auto cold = engine.compute();

  EvalScratch scratch;
  const auto warm1 = engine.compute(scratch);
  const auto warm2 = engine.compute(scratch);

  EXPECT_EQ(cold.epol, warm1.epol);
  EXPECT_EQ(warm1.epol, warm2.epol);
  EXPECT_TRUE(same_counters(cold.work, warm1.work));
  ASSERT_EQ(cold.born.size(), warm2.born.size());
  for (std::size_t i = 0; i < cold.born.size(); ++i)
    EXPECT_EQ(cold.born[i], warm2.born[i]) << "atom " << i;
}

TEST(EvalScratch, NoAllocationsAfterFirstWarmCompute) {
  const Problem p(600);
  GBEngine engine(p.molecule, p.surf);
  EvalScratch scratch;
  engine.compute(scratch);
  const std::size_t warm_events = scratch.allocation_events;
  EXPECT_GE(warm_events, 1u);  // the cold call had to size the buffers
  for (int i = 0; i < 3; ++i) engine.compute(scratch);
  EXPECT_EQ(scratch.allocation_events, warm_events);
}

TEST(EvalScratch, SmallerProblemReusesCapacity) {
  const Problem big(800), small(300);
  GBEngine big_engine(big.molecule, big.surf);
  GBEngine small_engine(small.molecule, small.surf);
  EvalScratch scratch;
  big_engine.compute(scratch);
  small_engine.compute(scratch);  // fits in the big run's capacity
  const std::size_t events = scratch.allocation_events;
  small_engine.compute(scratch);
  big_engine.compute(scratch);  // capacity never shrank
  EXPECT_EQ(scratch.allocation_events, events);
}

TEST(EvalScratch, NonAllocatingRemapMatchesAllocatingOverload) {
  const Problem p(300);
  GBEngine engine(p.molecule, p.surf);
  EvalScratch scratch;
  engine.compute(scratch);
  const auto owned = engine.born_to_input_order(scratch.born_tree);
  std::vector<double> out(scratch.born_tree.size());
  engine.born_to_input_order(scratch.born_tree, out);
  EXPECT_EQ(owned, out);
}

// ---- config mutability ------------------------------------------------------

TEST(EngineConfig, EvaluationKnobsMutableAfterConstruction) {
  const Problem p(300);
  GBEngine engine(p.molecule, p.surf);
  engine.approx().eps_epol = 2.0;
  engine.gb().eps_solv = 40.0;
  engine.trace().enabled = false;
  EXPECT_EQ(engine.config().approx.eps_epol, 2.0);
  EXPECT_EQ(engine.config().gb.eps_solv, 40.0);
}

// ---- persistence ------------------------------------------------------------

TEST(Persist, PreprocessedRoundTripsBitForBit) {
  const Problem p(400);
  const auto pre = core::Preprocessed::build(p.molecule, p.surf);

  std::stringstream ss;
  core::write_preprocessed(pre, ss);
  auto loaded = core::read_preprocessed(ss);

  EXPECT_EQ(loaded.atoms.num_atoms(), pre.atoms.num_atoms());
  EXPECT_EQ(loaded.atoms.tree.nodes().size(), pre.atoms.tree.nodes().size());
  EXPECT_EQ(loaded.qpoints.num_points(), pre.qpoints.num_points());
  EXPECT_EQ(loaded.atoms.charge, pre.atoms.charge);
  EXPECT_EQ(loaded.qpoints.weight, pre.qpoints.weight);
  // Derived planes are recomputed, not serialized — they must still match.
  // (Coordinate planes live inside the octree now; compare the spans.)
  EXPECT_TRUE(std::ranges::equal(loaded.atoms.soa_x(), pre.atoms.soa_x()));
  EXPECT_EQ(loaded.qpoints.soa_wnx, pre.qpoints.soa_wnx);

  // An engine adopting the loaded artifact evaluates identically.
  GBEngine fresh(p.molecule, p.surf);
  GBEngine adopted(std::move(loaded));
  EXPECT_EQ(fresh.compute().epol, adopted.compute().epol);
}

TEST(Persist, RejectsMismatchedSectionTag) {
  const Problem p(200);
  const auto pre = core::Preprocessed::build(p.molecule, p.surf);
  std::stringstream ss;
  core::write_qpoints_tree(pre.qpoints, ss);  // wrong artifact on purpose
  EXPECT_THROW(core::read_atoms_tree(ss), util::CheckError);
}

TEST(Persist, TruncationSweepAlwaysErrorsCleanly) {
  // Loading a stream cut at any point must throw a CheckError (short
  // read / bad magic / implausible length), never crash or return a
  // partially-filled artifact.
  const Problem p(120);
  const auto pre = core::Preprocessed::build(p.molecule, p.surf);
  std::stringstream ss;
  core::write_preprocessed(pre, ss);
  const std::string bytes = ss.str();
  // Every prefix in the header region, then strided through the payload
  // (the payload is large; every section boundary is still crossed).
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < std::min<std::size_t>(bytes.size(), 256); ++i)
    cuts.push_back(i);
  for (std::size_t i = 256; i < bytes.size(); i += 97) cuts.push_back(i);
  for (const std::size_t cut : cuts) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(core::read_preprocessed(truncated), util::CheckError)
        << "cut at " << cut << " of " << bytes.size();
  }
}

// ---- ScoringSession: parameter re-evaluation --------------------------------

TEST(Session, SecondEpsilonMatchesColdEngineBitForBit) {
  const Problem p(500);
  ScoringSession session(p.molecule, p.surf);
  session.evaluate();  // warm the scratch at the default parameters

  core::ApproxParams second;
  second.eps_born = 0.4;
  second.eps_epol = 1.5;
  const auto warm = session.evaluate_at(second);

  core::EngineConfig cold_cfg;
  cold_cfg.approx = second;
  GBEngine cold(p.molecule, p.surf, cold_cfg);
  const auto cold_r = cold.compute();

  EXPECT_EQ(warm.epol, cold_r.epol);
  EXPECT_TRUE(same_counters(warm.work, cold_r.work));
}

TEST(Session, RepeatedEvaluationIsDeterministicAndAllocationFree) {
  const Problem p(400);
  ScoringSession session(p.molecule, p.surf);
  const auto first = session.evaluate();
  const double e = first.epol;
  const std::size_t events = session.scratch().allocation_events;
  for (int i = 0; i < 3; ++i) EXPECT_EQ(session.evaluate().epol, e);
  // Re-evaluating at a *coarser* ε needs fewer bins — still no growth.
  core::ApproxParams coarse = session.engine().config().approx;
  coarse.eps_epol = 2.0;
  session.evaluate_at(coarse);
  EXPECT_EQ(session.scratch().allocation_events, events);
}

// ---- ScoringSession: moved-atom updates -------------------------------------

TEST(Session, UpdateRefitMatchesRebuiltEngineWithinTolerance) {
  const Problem base(500);
  util::Xoshiro256 rng(74);
  std::vector<geom::Vec3> moved(base.molecule.size());
  for (std::size_t i = 0; i < moved.size(); ++i)
    moved[i] = base.molecule.atom(i).pos +
               geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * 0.02;
  mol::Molecule moved_mol = base.molecule;
  for (std::size_t i = 0; i < moved.size(); ++i)
    moved_mol.atoms()[i].pos = moved[i];
  const auto moved_surf =
      surface::build_surface(moved_mol, {.subdivision = 1});

  ScoringSession session(base.molecule, base.surf);
  session.evaluate();
  session.update(moved, moved_surf);
  const double e_refit = session.evaluate().epol;

  GBEngine rebuilt(moved_mol, moved_surf);
  const double e_rebuilt = rebuilt.compute().epol;
  // DESIGN.md refit tolerance contract: ≤ 1 % relative.
  EXPECT_NEAR(e_refit, e_rebuilt, 0.01 * std::abs(e_rebuilt));
  EXPECT_GE(session.move_stats().refits, 1u);
}

TEST(Session, LargeMoveTriggersRebuild) {
  const Problem base(400);
  util::Xoshiro256 rng(12);
  std::vector<geom::Vec3> scattered(base.molecule.size());
  for (std::size_t i = 0; i < scattered.size(); ++i)
    scattered[i] = base.molecule.atom(i).pos +
                   geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * 6.0;
  mol::Molecule scattered_mol = base.molecule;
  for (std::size_t i = 0; i < scattered.size(); ++i)
    scattered_mol.atoms()[i].pos = scattered[i];
  const auto scattered_surf =
      surface::build_surface(scattered_mol, {.subdivision = 1});

  ScoringSession session(base.molecule, base.surf);
  const bool rebuilt = session.update(scattered, scattered_surf);
  EXPECT_TRUE(rebuilt);
  EXPECT_GE(session.move_stats().rebuilds, 1u);
}

// ---- ScoringSession: pose streams -------------------------------------------

TEST(Session, IdentityPoseReproducesBaseEnergyInFullMode) {
  const Complex c(600, 150, 18.0);
  const auto surf = surface::build_surface(c.combined, {.subdivision = 1});
  ScoringSession session(c.combined, surf, {}, {.subdivision = 1});
  const double e_base = session.evaluate().epol;

  const geom::RigidTransform identity = geom::RigidTransform::identity();
  const auto scores = session.score_poses({&identity, 1}, c.ligand_begin,
                                          core::PoseMode::Full);
  ASSERT_EQ(scores.size(), 1u);
  // Identity refit reproduces the tree geometry up to summation order.
  EXPECT_NEAR(scores[0].epol, e_base, 1e-6 * std::abs(e_base));
  EXPECT_FALSE(scores[0].rebuilt);
}

TEST(Session, CrossScreenAgreesWithFullModeAtContact) {
  const Complex c(600, 150, 16.0);
  const auto surf = surface::build_surface(c.combined, {.subdivision = 1});
  ScoringSession session(c.combined, surf, {}, {.subdivision = 1});

  const geom::RigidTransform identity = geom::RigidTransform::identity();
  const auto full = session.score_poses({&identity, 1}, c.ligand_begin,
                                        core::PoseMode::Full);
  session.reset_to_base();
  const auto screen = session.score_poses({&identity, 1}, c.ligand_begin,
                                          core::PoseMode::CrossScreen);
  // Frozen-monomer screening neglects inter-body descreening; the complex
  // energy still has to agree to a few percent (DESIGN.md's documented
  // accuracy envelope for the mode).
  EXPECT_NEAR(screen[0].epol, full[0].epol, 0.05 * std::abs(full[0].epol));
}

TEST(Session, CrossTermDecaysWithSeparation) {
  const Complex c(500, 120, 14.0);
  const auto surf = surface::build_surface(c.combined, {.subdivision = 1});
  ScoringSession session(c.combined, surf, {}, {.subdivision = 1});

  std::vector<geom::RigidTransform> poses;
  for (double shift : {0.0, 15.0, 60.0})
    poses.push_back(geom::RigidTransform::translate({shift, 0, 0}));
  const auto scores = session.score_poses(poses, c.ligand_begin,
                                          core::PoseMode::CrossScreen);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(std::abs(scores[0].delta), std::abs(scores[1].delta));
  EXPECT_GT(std::abs(scores[1].delta), std::abs(scores[2].delta));
  // The screening pose path must not rebuild: rigid motion preserves
  // intra-body distances, so leaf radii cannot inflate.
  EXPECT_EQ(session.move_stats().rebuilds, 0u);
}

TEST(Session, CrossScreenPosesAreDeterministic) {
  const Complex c(400, 100, 14.0);
  const auto surf = surface::build_surface(c.combined, {.subdivision = 1});
  ScoringSession session(c.combined, surf, {}, {.subdivision = 1});
  const auto pose =
      geom::RigidTransform::translate({3.0, -1.0, 2.0}) *
      geom::RigidTransform::rotate(geom::Mat3::axis_angle({0, 0, 1}, 0.7));
  const auto a = session.score_poses({&pose, 1}, c.ligand_begin,
                                     core::PoseMode::CrossScreen);
  const auto b = session.score_poses({&pose, 1}, c.ligand_begin,
                                     core::PoseMode::CrossScreen);
  EXPECT_EQ(a[0].epol, b[0].epol);
  EXPECT_EQ(a[0].delta, b[0].delta);
}

// ---- cross-tree Epol kernel -------------------------------------------------

TEST(CrossEpol, MatchesDirectDoubleLoopAtTinyEps) {
  mol::Molecule a = mol::generate_protein({.target_atoms = 250, .seed = 3});
  mol::Molecule b = mol::generate_protein({.target_atoms = 180, .seed = 4});
  b.transform(geom::RigidTransform::translate({22.0, 0, 0}));

  const auto ta = core::AtomsTree::build(a, {});
  const auto tb = core::AtomsTree::build(b, {});

  // Synthetic but realistic Born radii: vdW radius plus a deterministic
  // per-atom bump (the kernel only consumes radii, not how they arose).
  auto radii = [](const core::AtomsTree& t) {
    std::vector<double> r(t.num_atoms());
    for (std::size_t i = 0; i < r.size(); ++i)
      r[i] = t.vdw_radius[i] + 0.4 + 0.1 * static_cast<double>(i % 7);
    return r;
  };
  const auto born_a = radii(ta);
  const auto born_b = radii(tb);

  const double eps = 0.05;
  const auto ctx_a = core::EpolContext::build(ta, born_a, eps);
  const auto ctx_b = core::EpolContext::build(tb, born_b, eps);
  const core::GBParams gb;
  perf::WorkCounters wc;
  const double cross = core::approx_epol_cross(
      ta, ctx_a, born_a, tb, ctx_b, born_b, eps, false, gb, wc);

  double ref = 0.0;
  const auto pa = ta.tree.points(), pb = tb.tree.points();
  for (std::size_t i = 0; i < ta.num_atoms(); ++i)
    for (std::size_t j = 0; j < tb.num_atoms(); ++j)
      ref += ta.charge[i] * tb.charge[j] /
             core::f_gb(geom::dist2(pa[i], pb[j]), born_a[i] * born_b[j]);
  ref *= -gb.tau();

  EXPECT_NEAR(cross, ref, 0.01 * std::abs(ref));
  EXPECT_GT(wc.epol_exact + wc.epol_bins, 0u);
}

TEST(CrossEpol, EmptyTreesGiveZero) {
  mol::Molecule a = mol::generate_protein({.target_atoms = 100, .seed = 5});
  const auto ta = core::AtomsTree::build(a, {});
  std::vector<double> born(ta.num_atoms(), 1.5);
  const auto ctx = core::EpolContext::build(ta, born, 0.9);
  core::AtomsTree empty;
  core::EpolContext empty_ctx;
  perf::WorkCounters wc;
  EXPECT_EQ(core::approx_epol_cross(ta, ctx, born, empty, empty_ctx, {}, 0.9,
                                    false, {}, wc),
            0.0);
}

// ---- EpolContext in-place rebuild -------------------------------------------

TEST(EpolContext, RebuildMatchesBuildAndReportsGrowth) {
  mol::Molecule m = mol::generate_protein({.target_atoms = 300, .seed = 9});
  const auto ta = core::AtomsTree::build(m, {});
  std::vector<double> born(ta.num_atoms());
  for (std::size_t i = 0; i < born.size(); ++i)
    born[i] = 1.0 + 0.05 * static_cast<double>(i % 40);

  const auto built = core::EpolContext::build(ta, born, 0.9);
  core::EpolContext ctx;
  EXPECT_TRUE(ctx.rebuild(ta, born, 0.9));  // cold: must grow
  EXPECT_EQ(ctx.bins, built.bins);
  EXPECT_EQ(ctx.rep, built.rep);
  EXPECT_EQ(ctx.nbins, built.nbins);
  EXPECT_FALSE(ctx.rebuild(ta, born, 0.9));  // warm: capacity reused
  EXPECT_EQ(ctx.bins, built.bins);
  // Coarser ε → fewer bins → still no growth.
  EXPECT_FALSE(ctx.rebuild(ta, born, 2.5));
}
