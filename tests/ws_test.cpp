// Tests for the work-stealing scheduler substrate.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "octgb/perf/topology.hpp"
#include "octgb/ws/deque.hpp"
#include "octgb/ws/scheduler.hpp"

using octgb::ws::ChaseLevDeque;
using octgb::ws::Scheduler;

// ---- Chase–Lev deque -------------------------------------------------------

TEST(Deque, OwnerLifoOrder) {
  ChaseLevDeque<int> d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.pop(), &c);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.pop(), &a);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, StealFifoOrder) {
  ChaseLevDeque<int> d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.steal(), &b);
  EXPECT_EQ(d.steal(), &c);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, MixedPopAndSteal) {
  ChaseLevDeque<int> d;
  int v[4] = {0, 1, 2, 3};
  for (auto& x : v) d.push(&x);
  EXPECT_EQ(d.steal(), &v[0]);  // oldest
  EXPECT_EQ(d.pop(), &v[3]);    // newest
  EXPECT_EQ(d.steal(), &v[1]);
  EXPECT_EQ(d.pop(), &v[2]);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(8);
  std::vector<int> vals(1000);
  std::iota(vals.begin(), vals.end(), 0);
  for (auto& x : vals) d.push(&x);
  EXPECT_EQ(d.size_approx(), 1000);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop(), &vals[i]);
}

TEST(Deque, ConcurrentStealersReceiveEachItemOnce) {
  // Owner pushes; several thieves steal concurrently; every item must be
  // delivered exactly once across all consumers.
  constexpr int kItems = 20000;
  ChaseLevDeque<int> d;
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> delivered(kItems);
  for (auto& a : delivered) a.store(0);

  std::atomic<bool> done{false};
  auto thief = [&] {
    while (!done.load() || d.size_approx() > 0) {
      if (int* p = d.steal()) {
        delivered[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
      }
    }
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) thieves.emplace_back(thief);

  for (int i = 0; i < kItems; ++i) {
    vals[i] = i;
    d.push(&vals[i]);
    if (i % 7 == 0) {
      if (int* p = d.pop())
        delivered[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
    }
  }
  while (int* p = d.pop())
    delivered[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
  done.store(true);
  for (auto& t : thieves) t.join();
  // Final drain in case thieves exited between the owner's last pop and
  // the done flag.
  while (int* p = d.steal())
    delivered[static_cast<std::size_t>(p - vals.data())].fetch_add(1);

  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(delivered[i].load(), 1) << "item " << i;
}

// ---- scheduler -------------------------------------------------------------

namespace {

/// Recursive parallel sum of [lo, hi) via fork2 — the canonical fork-join
/// correctness probe.
long long psum(long long lo, long long hi) {
  if (hi - lo <= 64) {
    long long s = 0;
    for (long long i = lo; i < hi; ++i) s += i;
    return s;
  }
  const long long mid = lo + (hi - lo) / 2;
  long long left = 0, right = 0;
  Scheduler::fork2([&] { left = psum(lo, mid); },
                   [&] { right = psum(mid, hi); });
  return left + right;
}

}  // namespace

TEST(Scheduler, SerialFallbackWithoutScheduler) {
  // No scheduler active: fork2 and parallel_for must run inline.
  EXPECT_EQ(Scheduler::current(), nullptr);
  EXPECT_EQ(psum(0, 10000), 10000LL * 9999 / 2);
  std::atomic<long long> total{0};
  Scheduler::parallel_for(0, 1000, 16, [&](std::int64_t lo, std::int64_t hi) {
    long long s = 0;
    for (auto i = lo; i < hi; ++i) s += i;
    total += s;
  });
  EXPECT_EQ(total.load(), 1000LL * 999 / 2);
}

class SchedulerWorkers : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerWorkers, RecursiveSumIsCorrect) {
  Scheduler sched(GetParam());
  long long result = 0;
  sched.run([&] { result = psum(0, 200000); });
  EXPECT_EQ(result, 200000LL * 199999 / 2);
}

TEST_P(SchedulerWorkers, ParallelForCoversEveryIndexOnce) {
  Scheduler sched(GetParam());
  std::vector<std::atomic<int>> hits(5000);
  for (auto& h : hits) h.store(0);
  sched.run([&] {
    Scheduler::parallel_for(0, 5000, 7, [&](std::int64_t lo, std::int64_t hi) {
      for (auto i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST_P(SchedulerWorkers, ForkAllRunsEveryClosure) {
  Scheduler sched(GetParam());
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h.store(0);
  sched.run([&] {
    std::vector<std::function<void()>> fns;
    for (int i = 0; i < 8; ++i)
      fns.emplace_back([&hits, i] { hits[i].fetch_add(1); });
    Scheduler::fork_all(fns);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(SchedulerWorkers, NestedForksComplete) {
  Scheduler sched(GetParam());
  std::atomic<int> count{0};
  std::function<void(int)> tree = [&](int depth) {
    count.fetch_add(1);
    if (depth == 0) return;
    Scheduler::fork2([&, depth] { tree(depth - 1); },
                     [&, depth] { tree(depth - 1); });
  };
  sched.run([&] { tree(10); });
  EXPECT_EQ(count.load(), (1 << 11) - 1);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SchedulerWorkers,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Scheduler, StatsCountSpawnsAndExecutions) {
  Scheduler sched(4);
  sched.reset_stats();
  long long result = 0;
  sched.run([&] { result = psum(0, 50000); });
  const auto st = sched.stats();
  EXPECT_GT(st.spawns, 0u);
  EXPECT_EQ(st.executed, st.spawns);  // every spawned task ran exactly once
  EXPECT_EQ(result, 50000LL * 49999 / 2);
}

TEST(Scheduler, ReusableAcrossRuns) {
  Scheduler sched(3);
  for (int iter = 0; iter < 5; ++iter) {
    long long result = 0;
    sched.run([&] { result = psum(0, 10000); });
    EXPECT_EQ(result, 10000LL * 9999 / 2);
  }
}

TEST(Scheduler, CurrentIsSetInsideRunOnly) {
  Scheduler sched(2);
  EXPECT_EQ(Scheduler::current(), nullptr);
  sched.run([&] { EXPECT_EQ(Scheduler::current(), &sched); });
  EXPECT_EQ(Scheduler::current(), nullptr);
}

TEST(Scheduler, ParallelForGrainRespectsEmptyAndTinyRanges) {
  Scheduler sched(2);
  int calls = 0;
  sched.run([&] {
    Scheduler::parallel_for(5, 5, 4, [&](std::int64_t, std::int64_t) {
      ++calls;
    });
  });
  EXPECT_EQ(calls, 0);
  std::atomic<long long> sum{0};
  sched.run([&] {
    Scheduler::parallel_for(3, 4, 100, [&](std::int64_t lo, std::int64_t hi) {
      sum += hi - lo;
    });
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(Scheduler, ParallelForAutoGrainCoversEveryIndexOnce) {
  // grain <= 0 derives max(1, span / (8 * workers)); coverage must be
  // exact regardless of the derived chunking.
  Scheduler sched(4);
  std::vector<std::atomic<int>> hits(5000);
  sched.run([&] {
    Scheduler::parallel_for(0, 5000, 0, [&](std::int64_t lo, std::int64_t hi) {
      for (auto i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ParallelForAutoGrainSplitsWork) {
  // With 4 workers over 6400 indices the derived grain is 200, so chunks
  // must be capped at that size (and there must be more than one).
  Scheduler sched(4);
  std::atomic<std::int64_t> max_chunk{0};
  std::atomic<int> chunks{0};
  sched.run([&] {
    Scheduler::parallel_for(0, 6400, 0, [&](std::int64_t lo, std::int64_t hi) {
      std::int64_t len = hi - lo;
      std::int64_t cur = max_chunk.load();
      while (len > cur && !max_chunk.compare_exchange_weak(cur, len)) {
      }
      ++chunks;
    });
  });
  EXPECT_LE(max_chunk.load(), 200);
  EXPECT_GT(chunks.load(), 1);
}

TEST(Scheduler, ParallelForAutoGrainSerialFallback) {
  // Without an active scheduler the auto grain resolves against one
  // worker: a single inline call covering the whole range.
  EXPECT_EQ(Scheduler::current(), nullptr);
  int calls = 0;
  std::int64_t covered = 0;
  Scheduler::parallel_for(0, 100, -3, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    covered += hi - lo;
  });
  EXPECT_EQ(covered, 100);
  EXPECT_EQ(calls, 1);
}

TEST(Scheduler, ParallelReduceAutoGrainMatchesExplicitGrain) {
  // The derived grain changes only the chunking; the fixed tree-shaped
  // combination keeps the reduction value schedule-independent, and any
  // grain sums the same integer series exactly.
  Scheduler sched(4);
  double auto_grain = 0.0, explicit_grain = 0.0;
  const auto body = [](std::int64_t lo, std::int64_t hi) {
    double s = 0;
    for (auto i = lo; i < hi; ++i) s += double(i);
    return s;
  };
  sched.run([&] {
    auto_grain = Scheduler::parallel_reduce(0, 20000, 0, body);
    explicit_grain = Scheduler::parallel_reduce(0, 20000, 64, body);
  });
  EXPECT_DOUBLE_EQ(auto_grain, explicit_grain);
  EXPECT_DOUBLE_EQ(auto_grain, 20000.0 * 19999.0 / 2.0);
}

// ---- parallel_reduce ---------------------------------------------------------

TEST(Scheduler, ParallelReduceMatchesSerialSum) {
  Scheduler sched(4);
  double result = 0.0;
  sched.run([&] {
    result = Scheduler::parallel_reduce(
        1, 100001, 128, [](std::int64_t lo, std::int64_t hi) {
          double s = 0;
          for (auto i = lo; i < hi; ++i) s += 1.0 / double(i);
          return s;
        });
  });
  double expected = 0;
  for (int i = 1; i <= 100000; ++i) expected += 1.0 / i;
  // Fixed tree-shaped combination: equal every run, near-serial value.
  EXPECT_NEAR(result, expected, 1e-9);
  double second = 0.0;
  sched.run([&] {
    second = Scheduler::parallel_reduce(
        1, 100001, 128, [](std::int64_t lo, std::int64_t hi) {
          double s = 0;
          for (auto i = lo; i < hi; ++i) s += 1.0 / double(i);
          return s;
        });
  });
  EXPECT_DOUBLE_EQ(result, second);  // schedule-independent
}

TEST(Scheduler, ParallelReduceSerialFallback) {
  EXPECT_EQ(Scheduler::current(), nullptr);
  const double r = Scheduler::parallel_reduce(
      0, 100, 8, [](std::int64_t lo, std::int64_t hi) {
        return double(hi - lo);
      });
  EXPECT_DOUBLE_EQ(r, 100.0);
  EXPECT_DOUBLE_EQ(Scheduler::parallel_reduce(
                       5, 5, 1, [](std::int64_t, std::int64_t) { return 9.0; }),
                   0.0);
}

TEST(Scheduler, ConcurrentIndependentSchedulers) {
  // The hybrid driver runs one scheduler per mpp rank, all in the same
  // process at the same time — their thread-local worker contexts must
  // not interfere.
  constexpr int kRanks = 4;
  std::vector<long long> results(kRanks, 0);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([&, r] {
      Scheduler sched(2);
      sched.run([&] { results[r] = psum(0, 50000 + r); });
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < kRanks; ++r) {
    const long long n = 50000 + r;
    EXPECT_EQ(results[r], n * (n - 1) / 2) << "rank " << r;
  }
}

TEST(Scheduler, DeepRecursionDoesNotStarve) {
  // A narrow, deep fork chain (worst case for help-first stacking).
  Scheduler sched(3);
  std::atomic<int> depth_reached{0};
  std::function<void(int)> chain = [&](int d) {
    if (d == 0) return;
    depth_reached.fetch_add(1);
    Scheduler::fork2([&, d] { chain(d - 1); }, [] {});
  };
  sched.run([&] { chain(300); });
  EXPECT_EQ(depth_reached.load(), 300);
}

TEST(Deque, GrowthUnderConcurrentSteals) {
  // Satellite stress for the TSan leg: the owner pushes far past the
  // initial capacity — forcing grow() while thieves hold references to
  // the old array — and four thieves drain concurrently. Every item must
  // still be delivered exactly once.
  constexpr int kItems = 10000;
  ChaseLevDeque<int> d(4);  // tiny initial capacity: many grows
  std::vector<int> vals(kItems);
  std::vector<std::atomic<int>> delivered(kItems);
  for (auto& a : delivered) a.store(0);

  std::atomic<bool> done{false};
  auto thief = [&] {
    while (!done.load() || d.size_approx() > 0) {
      if (int* p = d.steal()) {
        delivered[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
      }
    }
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < 4; ++t) thieves.emplace_back(thief);

  // Pure pushes: the owner never pops, so the deque stays near its high
  // water mark and every capacity doubling races live steals.
  for (int i = 0; i < kItems; ++i) {
    vals[i] = i;
    d.push(&vals[i]);
  }
  done.store(true);
  for (auto& t : thieves) t.join();
  while (int* p = d.steal())
    delivered[static_cast<std::size_t>(p - vals.data())].fetch_add(1);

  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(delivered[i].load(), 1) << "item " << i;
}

// ---- locality-aware stealing (DESIGN.md §2.11) -----------------------------

namespace {

/// Synthetic 2-socket topology: cpus [0, half) on socket/L3 0, the rest on
/// socket/L3 1.
octgb::perf::CpuTopology two_socket_topo(int n, int half) {
  octgb::perf::CpuTopology t = octgb::perf::flat_topology(n);
  t.flat_fallback = false;
  t.sockets = 2;
  t.l3_domains = 2;
  for (int i = 0; i < n; ++i)
    t.cpus[static_cast<std::size_t>(i)] =
        octgb::perf::CpuTopology::Cpu{i, i < half ? 0 : 1, i < half ? 0 : 1,
                                      i};
  return t;
}

}  // namespace

TEST(Scheduler, TieredStealsClassifyAgainstTopology) {
  // 4 workers on a synthetic 2-socket host: steals must be classified,
  // the classes must sum to the total, and the fork-join result must be
  // exactly the serial sum regardless of who stole what.
  const auto topo = two_socket_topo(4, 2);
  octgb::ws::SchedulerOptions opts;
  opts.topology = &topo;
  Scheduler sched(4, opts);
  EXPECT_EQ(sched.worker_cpu(0), 0);
  EXPECT_EQ(sched.worker_cpu(3), 3);
  long long total = 0;
  sched.run([&] { total = psum(0, 200000); });
  EXPECT_EQ(total, 200000LL * 199999 / 2);
  const auto st = sched.stats();
  EXPECT_EQ(st.local_steals + st.socket_steals + st.remote_steals,
            st.steals);
  EXPECT_EQ(st.offblock_steals, 0u);  // not pinned: never counted
}

TEST(Scheduler, ResultsBitIdenticalAcrossTopologiesAndWorkerCounts) {
  // parallel_reduce has a fixed combination tree, so the double result is
  // bitwise identical whatever the victim hierarchy or worker count.
  const auto body = [](std::int64_t lo, std::int64_t hi) {
    double s = 0.0;
    for (std::int64_t i = lo; i < hi; ++i)
      s += 1.0 / (1.0 + static_cast<double>(i));
    return s;
  };
  double ref = 0.0;
  {
    Scheduler s1(1);
    s1.run([&] { ref = Scheduler::parallel_reduce(0, 50000, 64, body); });
  }
  for (int workers : {2, 3, 4}) {
    for (int half : {1, 2}) {
      const auto topo = two_socket_topo(4, half);
      octgb::ws::SchedulerOptions opts;
      opts.topology = &topo;
      Scheduler sched(workers, opts);
      double got = 0.0;
      sched.run([&] { got = Scheduler::parallel_reduce(0, 50000, 64, body); });
      EXPECT_EQ(got, ref) << workers << " workers, half=" << half;
    }
  }
}

TEST(Scheduler, VictimTiersReflectCacheDistance) {
  // On a 1-L3 topology every victim is local; on a split topology a
  // worker across the boundary is remote. Exercised through the stats:
  // with a single L3, all successful steals must classify as local.
  const auto topo = two_socket_topo(4, 4);  // half=4: everyone socket 0
  octgb::ws::SchedulerOptions opts;
  opts.topology = &topo;
  Scheduler sched(4, opts);
  long long total = 0;
  sched.run([&] { total = psum(0, 200000); });
  EXPECT_EQ(total, 200000LL * 199999 / 2);
  const auto st = sched.stats();
  EXPECT_EQ(st.socket_steals, 0u);
  EXPECT_EQ(st.remote_steals, 0u);
  EXPECT_EQ(st.local_steals, st.steals);
}

TEST(Scheduler, PinnedBlockReportsZeroOffblockSteals) {
  // Pin onto the host topology (best effort — on hosts with fewer cores
  // than workers the pin calls may fail, which must degrade gracefully,
  // never throw). The off-block invariant holds structurally.
  octgb::ws::SchedulerOptions opts;
  opts.pin = true;
  opts.pin_first = 0;
  Scheduler sched(3, opts);
  long long total = 0;
  sched.run([&] { total = psum(0, 100000); });
  EXPECT_EQ(total, 100000LL * 99999 / 2);
  const auto st = sched.stats();
  EXPECT_EQ(st.offblock_steals, 0u);
  EXPECT_LE(st.pinned_workers, 3u);
  // A second run works after the caller's affinity mask was restored.
  sched.run([&] { total = psum(0, 1000); });
  EXPECT_EQ(total, 1000LL * 999 / 2);
}
