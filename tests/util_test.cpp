// Tests for octgb::util — strings, RNG, args, tables, checks.

#include <gtest/gtest.h>

#include "octgb/util/args.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"
#include "octgb/util/strings.hpp"
#include "octgb/util/table.hpp"

namespace util = octgb::util;

// ---- check ---------------------------------------------------------------

TEST(Check, PassingConditionDoesNothing) { OCTGB_CHECK(1 + 1 == 2); }

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(OCTGB_CHECK(false), util::CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    OCTGB_CHECK_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, TrimRemovesBothEnds) {
  EXPECT_EQ(util::trim("  abc  "), "abc");
  EXPECT_EQ(util::trim("abc"), "abc");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("\t x \n"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = util::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto parts = util::split_ws("  a \t b\n c ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(util::starts_with("ATOM  123", "ATOM"));
  EXPECT_FALSE(util::starts_with("AT", "ATOM"));
  EXPECT_TRUE(util::starts_with("x", ""));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(util::to_lower("AbC1"), "abc1");
  EXPECT_EQ(util::to_upper("aBc1"), "ABC1");
}

TEST(Strings, ParseDoubleField) {
  EXPECT_DOUBLE_EQ(util::parse_double_field("  3.25 ", 0.0), 3.25);
  EXPECT_DOUBLE_EQ(util::parse_double_field("   ", 7.5), 7.5);
  EXPECT_DOUBLE_EQ(util::parse_double_field("-1e3", 0.0), -1000.0);
  EXPECT_THROW(util::parse_double_field("12x", 0.0), util::CheckError);
}

TEST(Strings, ParseIntField) {
  EXPECT_EQ(util::parse_int_field(" 42 ", 0), 42);
  EXPECT_EQ(util::parse_int_field("", 9), 9);
  EXPECT_EQ(util::parse_int_field("-7", 0), -7);
  EXPECT_THROW(util::parse_int_field("4.2", 0), util::CheckError);
}

TEST(Strings, Format) {
  EXPECT_EQ(util::format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(util::format("%.2f", 1.005), "1.00");  // printf semantics
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(util::human_bytes(512), "512 B");
  EXPECT_EQ(util::human_bytes(1536), "1.50 KB");
  EXPECT_EQ(util::human_bytes(1.4 * 1024 * 1024 * 1024), "1.40 GB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(util::human_seconds(198.0), "3.3 min");
  EXPECT_EQ(util::human_seconds(4.8), "4.80 s");
  EXPECT_EQ(util::human_seconds(0.0125), "12.5 ms");
  EXPECT_EQ(util::human_seconds(2.5e-5), "25.0 us");
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  util::Xoshiro256 a(12345), b(12345), c(54321);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  util::Xoshiro256 a2(12345);
  for (int i = 0; i < 100; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInUnitInterval) {
  util::Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  util::Xoshiro256 r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  util::Xoshiro256 r(13);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, NormalMomentsMatch) {
  util::Xoshiro256 r(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, SplitStreamsDiffer) {
  util::Xoshiro256 parent(23);
  auto child = parent.split();
  bool differs = false;
  for (int i = 0; i < 32; ++i) differs |= (parent() != child());
  EXPECT_TRUE(differs);
}

TEST(Rng, Fnv1a64IsStable) {
  // Stable across platforms and runs: molecule seeds depend on it.
  EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(util::fnv1a64("1PPE_l_b"), util::fnv1a64("1PPE_r_b"));
}

// ---- args ------------------------------------------------------------------

TEST(Args, ParsesAllForms) {
  std::string name = "default";
  double x = 1.0;
  int n = 2;
  bool flag = false;
  util::Args args;
  args.add("name", &name, "a name")
      .add("x", &x, "a double")
      .add("n", &n, "an int")
      .flag("verbose", &flag, "a flag");
  const char* argv[] = {"prog", "--name", "mol", "--x=2.5", "--n", "7",
                        "--verbose"};
  args.parse(7, const_cast<char**>(argv));
  EXPECT_EQ(name, "mol");
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(n, 7);
  EXPECT_TRUE(flag);
}

TEST(Args, UnknownOptionThrows) {
  util::Args args;
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(args.parse(3, const_cast<char**>(argv)), util::CheckError);
}

TEST(Args, MissingValueThrows) {
  int n = 0;
  util::Args args;
  args.add("n", &n, "int");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(args.parse(2, const_cast<char**>(argv)), util::CheckError);
}

TEST(Args, HelpMentionsOptionsAndDefaults) {
  int n = 42;
  util::Args args;
  args.add("count", &n, "how many");
  const std::string h = args.help("prog");
  EXPECT_NE(h.find("--count"), std::string::npos);
  EXPECT_NE(h.find("42"), std::string::npos);
  EXPECT_NE(h.find("how many"), std::string::npos);
}

// ---- table -----------------------------------------------------------------

TEST(Table, AlignedRendering) {
  util::Table t("demo");
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header columns aligned to the widest cell.
  EXPECT_NE(s.find("name    value"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  util::Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), util::CheckError);
}

TEST(Table, CsvQuotesSpecials) {
  util::Table t;
  t.header({"a", "b"});
  t.row({"x,y", "he said \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  util::Table t;
  t.header({"m", "n"});
  t.row({"1", "2"});
  EXPECT_EQ(t.csv(), "m,n\n1,2\n");
}
