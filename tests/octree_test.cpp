// Tests for the octree and the nblist baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "octgb/mol/generate.hpp"
#include "octgb/octree/nblist.hpp"
#include "octgb/octree/octree.hpp"
#include "octgb/util/rng.hpp"

using namespace octgb;
using octree::BuildParams;
using octree::NbList;
using octree::Octree;

namespace {

std::vector<geom::Vec3> random_points(std::size_t n, std::uint64_t seed,
                                      double extent = 50.0) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec3> pts(n);
  for (auto& p : pts)
    p = {rng.uniform(-extent, extent), rng.uniform(-extent, extent),
         rng.uniform(-extent, extent)};
  return pts;
}

}  // namespace

TEST(Octree, EmptyInput) {
  const Octree t = Octree::build({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_points(), 0u);
  EXPECT_TRUE(t.validate());
}

TEST(Octree, SinglePointIsRootLeaf) {
  const std::vector<geom::Vec3> pts = {{1, 2, 3}};
  const Octree t = Octree::build(pts);
  ASSERT_EQ(t.nodes().size(), 1u);
  EXPECT_TRUE(t.root().is_leaf());
  EXPECT_EQ(t.root().centroid, (geom::Vec3{1, 2, 3}));
  EXPECT_DOUBLE_EQ(t.root().radius, 0.0);
  EXPECT_TRUE(t.validate());
}

class OctreeBuild : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OctreeBuild, InvariantsHoldForRandomClouds) {
  const auto [n, leaf] = GetParam();
  BuildParams params;
  params.max_leaf_size = static_cast<std::uint32_t>(leaf);
  const auto pts = random_points(n, 1000 + n + leaf);
  const Octree t = Octree::build(pts, params);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.num_points(), static_cast<std::size_t>(n));
  // Every leaf within the size bound (except depth-capped degenerates,
  // which random clouds don't produce).
  for (const auto id : t.leaf_ids())
    EXPECT_LE(t.node(id).size(), params.max_leaf_size);
  // Leaves partition the point range in order.
  std::uint32_t cursor = 0;
  for (const auto id : t.leaf_ids()) {
    EXPECT_EQ(t.node(id).begin, cursor);
    cursor = t.node(id).end;
  }
  EXPECT_EQ(cursor, t.num_points());
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, OctreeBuild,
    ::testing::Combine(::testing::Values(1, 7, 64, 500, 3000),
                       ::testing::Values(1, 8, 32, 128)));

TEST(Octree, PermutationIsABijection) {
  const auto pts = random_points(777, 2);
  const Octree t = Octree::build(pts);
  std::set<std::uint32_t> seen(t.point_index().begin(),
                               t.point_index().end());
  EXPECT_EQ(seen.size(), pts.size());
  // Permuted points match originals through the index.
  for (std::size_t pos = 0; pos < pts.size(); ++pos)
    EXPECT_EQ(t.points()[pos], pts[t.point_index()[pos]]);
}

TEST(Octree, CoincidentPointsTerminates) {
  // 100 identical points can never be separated spatially; the depth cap
  // and degenerate-split guard must produce a valid (leaf-heavy) tree.
  std::vector<geom::Vec3> pts(100, {1, 1, 1});
  BuildParams params;
  params.max_leaf_size = 8;
  const Octree t = Octree::build(pts, params);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.num_points(), 100u);
}

TEST(Octree, RadiusEnclosesSubtreePoints) {
  const auto pts = random_points(2000, 3);
  const Octree t = Octree::build(pts);
  for (const auto& n : t.nodes()) {
    for (std::uint32_t i = n.begin; i < n.end; ++i)
      EXPECT_LE(geom::dist(n.centroid, t.points()[i]), n.radius + 1e-9);
  }
}

TEST(Octree, FootprintLinearInPoints) {
  // The paper's memory claim: octree size is linear in the point count and
  // independent of any approximation parameter.
  const auto small = Octree::build(random_points(1000, 4));
  const auto large = Octree::build(random_points(8000, 5));
  const double ratio = static_cast<double>(large.footprint_bytes()) /
                       static_cast<double>(small.footprint_bytes());
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(Octree, DepthIsLogarithmicForUniformClouds) {
  const auto pts = random_points(10000, 6);
  BuildParams params;
  params.max_leaf_size = 16;
  const Octree t = Octree::build(pts, params);
  EXPECT_LE(t.max_depth(), 12);
}

TEST(Octree, ChildrenAreContiguousAndAfterParent) {
  const auto pts = random_points(3000, 7);
  const Octree t = Octree::build(pts);
  for (std::uint32_t id = 0; id < t.nodes().size(); ++id) {
    const auto& n = t.node(id);
    if (n.is_leaf()) continue;
    EXPECT_GT(n.first_child, id);  // enables bottom-up reverse sweeps
    for (std::uint8_t c = 1; c < n.child_count; ++c) {
      EXPECT_EQ(t.node(n.first_child + c).begin,
                t.node(n.first_child + c - 1).end);
    }
  }
}

// ---- nblist ------------------------------------------------------------------

TEST(NbList, MatchesBruteForceOnRandomCloud) {
  const auto pts = random_points(400, 8, 15.0);
  const double cutoff = 6.0;
  const NbList list = NbList::build(pts, {.cutoff = cutoff, .max_bytes = 0});
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::set<std::uint32_t> expected;
    for (std::uint32_t j = 0; j < pts.size(); ++j) {
      if (j != i && geom::dist(pts[i], pts[j]) <= cutoff) expected.insert(j);
    }
    const auto got = list.neighbors(i);
    std::set<std::uint32_t> actual(got.begin(), got.end());
    EXPECT_EQ(actual, expected) << "atom " << i;
  }
}

TEST(NbList, PairsAreSymmetric) {
  const auto pts = random_points(300, 9, 20.0);
  const NbList list = NbList::build(pts, {.cutoff = 8.0, .max_bytes = 0});
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      const auto back = list.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(NbList, MemoryGrowsCubicallyWithCutoff) {
  // The §II claim driving the whole octree-vs-nblist argument.
  const auto m = mol::generate_protein({.target_atoms = 3000, .seed = 10});
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const NbList c6 = NbList::build(pts, {.cutoff = 6.0, .max_bytes = 0});
  const NbList c12 = NbList::build(pts, {.cutoff = 12.0, .max_bytes = 0});
  const double growth = static_cast<double>(c12.total_pairs()) /
                        static_cast<double>(c6.total_pairs());
  // (12/6)³ = 8 in the bulk; surface effects pull it below.
  EXPECT_GT(growth, 3.0);
  EXPECT_LT(growth, 9.0);
}

TEST(NbList, ByteBudgetThrowsSimulatedOom) {
  const auto pts = random_points(2000, 11, 10.0);  // dense
  EXPECT_THROW(NbList::build(pts, {.cutoff = 15.0, .max_bytes = 1024}),
               octree::NbListOutOfMemory);
  // Unlimited budget succeeds on the same input.
  EXPECT_NO_THROW(NbList::build(pts, {.cutoff = 15.0, .max_bytes = 0}));
}

TEST(NbList, EmptyAndSinglePoint) {
  const NbList empty = NbList::build({}, {.cutoff = 5.0});
  EXPECT_EQ(empty.num_points(), 0u);
  const std::vector<geom::Vec3> one = {{0, 0, 0}};
  const NbList single = NbList::build(one, {.cutoff = 5.0});
  EXPECT_EQ(single.num_points(), 1u);
  EXPECT_TRUE(single.neighbors(0).empty());
}

TEST(NbList, OctreeFootprintIndependentOfCutoffUnlikeNblist) {
  const auto m = mol::generate_protein({.target_atoms = 2000, .seed = 12});
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const Octree t = Octree::build(pts);
  const std::size_t octree_bytes = t.footprint_bytes();  // no cutoff at all
  const NbList small_cut = NbList::build(pts, {.cutoff = 4.0, .max_bytes = 0});
  const NbList big_cut = NbList::build(pts, {.cutoff = 16.0, .max_bytes = 0});
  EXPECT_GT(big_cut.footprint_bytes(), 4 * small_cut.footprint_bytes());
  EXPECT_LT(octree_bytes, big_cut.footprint_bytes());
}

// ---- serialization -----------------------------------------------------------

#include <sstream>

#include "octgb/octree/serialize.hpp"
#include "octgb/util/check.hpp"

TEST(OctreeSerialize, RoundTripPreservesEverything) {
  const auto pts = random_points(1234, 21);
  const Octree original = Octree::build(pts);
  std::stringstream buf;
  octree::write_octree(original, buf);
  const Octree loaded = octree::read_octree(buf);
  EXPECT_TRUE(loaded.validate());
  ASSERT_EQ(loaded.nodes().size(), original.nodes().size());
  ASSERT_EQ(loaded.num_points(), original.num_points());
  for (std::size_t i = 0; i < original.nodes().size(); ++i) {
    EXPECT_EQ(loaded.node(i).centroid, original.node(i).centroid);
    EXPECT_EQ(loaded.node(i).begin, original.node(i).begin);
    EXPECT_EQ(loaded.node(i).first_child, original.node(i).first_child);
  }
  EXPECT_EQ(loaded.leaf_ids(), original.leaf_ids());
  EXPECT_EQ(loaded.max_depth(), original.max_depth());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(loaded.points()[i], original.points()[i]);
}

TEST(OctreeSerialize, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not an octree");
  EXPECT_THROW(octree::read_octree(garbage), octgb::util::CheckError);

  const auto pts = random_points(100, 22);
  const Octree t = Octree::build(pts);
  std::stringstream buf;
  octree::write_octree(t, buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);  // truncate
  std::stringstream truncated(bytes);
  EXPECT_THROW(octree::read_octree(truncated), octgb::util::CheckError);
}

TEST(OctreeSerialize, FileRoundTrip) {
  const auto pts = random_points(300, 23);
  const Octree t = Octree::build(pts);
  const std::string path = "serialize_test.octree";
  octree::write_octree_file(t, path);
  const Octree loaded = octree::read_octree_file(path);
  EXPECT_TRUE(loaded.validate());
  EXPECT_EQ(loaded.num_points(), t.num_points());
  std::remove(path.c_str());
  EXPECT_THROW(octree::read_octree_file(path), octgb::util::CheckError);
}
