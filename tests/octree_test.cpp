// Tests for the octree and the nblist baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "octgb/mol/generate.hpp"
#include "octgb/octree/nblist.hpp"
#include "octgb/octree/octree.hpp"
#include "octgb/util/rng.hpp"

using namespace octgb;
using octree::BuildParams;
using octree::NbList;
using octree::Octree;

namespace {

std::vector<geom::Vec3> random_points(std::size_t n, std::uint64_t seed,
                                      double extent = 50.0) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec3> pts(n);
  for (auto& p : pts)
    p = {rng.uniform(-extent, extent), rng.uniform(-extent, extent),
         rng.uniform(-extent, extent)};
  return pts;
}

}  // namespace

TEST(Octree, EmptyInput) {
  const Octree t = Octree::build({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_points(), 0u);
  EXPECT_TRUE(t.validate());
}

TEST(Octree, SinglePointIsRootLeaf) {
  const std::vector<geom::Vec3> pts = {{1, 2, 3}};
  const Octree t = Octree::build(pts);
  ASSERT_EQ(t.nodes().size(), 1u);
  EXPECT_TRUE(t.root().is_leaf());
  EXPECT_EQ(t.root().centroid, (geom::Vec3{1, 2, 3}));
  EXPECT_DOUBLE_EQ(t.root().radius, 0.0);
  EXPECT_TRUE(t.validate());
}

class OctreeBuild : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OctreeBuild, InvariantsHoldForRandomClouds) {
  const auto [n, leaf] = GetParam();
  BuildParams params;
  params.max_leaf_size = static_cast<std::uint32_t>(leaf);
  const auto pts = random_points(n, 1000 + n + leaf);
  const Octree t = Octree::build(pts, params);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.num_points(), static_cast<std::size_t>(n));
  // Every leaf within the size bound (except depth-capped degenerates,
  // which random clouds don't produce).
  for (const auto id : t.leaf_ids())
    EXPECT_LE(t.node(id).size(), params.max_leaf_size);
  // Leaves partition the point range in order.
  std::uint32_t cursor = 0;
  for (const auto id : t.leaf_ids()) {
    EXPECT_EQ(t.node(id).begin, cursor);
    cursor = t.node(id).end;
  }
  EXPECT_EQ(cursor, t.num_points());
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, OctreeBuild,
    ::testing::Combine(::testing::Values(1, 7, 64, 500, 3000),
                       ::testing::Values(1, 8, 32, 128)));

TEST(Octree, PermutationIsABijection) {
  const auto pts = random_points(777, 2);
  const Octree t = Octree::build(pts);
  std::set<std::uint32_t> seen(t.point_index().begin(),
                               t.point_index().end());
  EXPECT_EQ(seen.size(), pts.size());
  // Permuted points match originals through the index.
  for (std::size_t pos = 0; pos < pts.size(); ++pos)
    EXPECT_EQ(t.points()[pos], pts[t.point_index()[pos]]);
}

TEST(Octree, CoincidentPointsTerminates) {
  // 100 identical points can never be separated spatially; the depth cap
  // and degenerate-split guard must produce a valid (leaf-heavy) tree.
  std::vector<geom::Vec3> pts(100, {1, 1, 1});
  BuildParams params;
  params.max_leaf_size = 8;
  const Octree t = Octree::build(pts, params);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.num_points(), 100u);
}

TEST(Octree, RadiusEnclosesSubtreePoints) {
  const auto pts = random_points(2000, 3);
  const Octree t = Octree::build(pts);
  for (const auto& n : t.nodes()) {
    for (std::uint32_t i = n.begin; i < n.end; ++i)
      EXPECT_LE(geom::dist(n.centroid, t.points()[i]), n.radius + 1e-9);
  }
}

TEST(Octree, FootprintLinearInPoints) {
  // The paper's memory claim: octree size is linear in the point count and
  // independent of any approximation parameter.
  const auto small = Octree::build(random_points(1000, 4));
  const auto large = Octree::build(random_points(8000, 5));
  const double ratio = static_cast<double>(large.footprint_bytes()) /
                       static_cast<double>(small.footprint_bytes());
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(Octree, DepthIsLogarithmicForUniformClouds) {
  const auto pts = random_points(10000, 6);
  BuildParams params;
  params.max_leaf_size = 16;
  const Octree t = Octree::build(pts, params);
  EXPECT_LE(t.max_depth(), 12);
}

TEST(Octree, ChildrenAreContiguousAndAfterParent) {
  const auto pts = random_points(3000, 7);
  const Octree t = Octree::build(pts);
  for (std::uint32_t id = 0; id < t.nodes().size(); ++id) {
    const auto& n = t.node(id);
    if (n.is_leaf()) continue;
    EXPECT_GT(n.first_child, id);  // enables bottom-up reverse sweeps
    for (std::uint8_t c = 1; c < n.child_count; ++c) {
      EXPECT_EQ(t.node(n.first_child + c).begin,
                t.node(n.first_child + c - 1).end);
    }
  }
}

// ---- nblist ------------------------------------------------------------------

TEST(NbList, MatchesBruteForceOnRandomCloud) {
  const auto pts = random_points(400, 8, 15.0);
  const double cutoff = 6.0;
  const NbList list = NbList::build(pts, {.cutoff = cutoff, .max_bytes = 0});
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::set<std::uint32_t> expected;
    for (std::uint32_t j = 0; j < pts.size(); ++j) {
      if (j != i && geom::dist(pts[i], pts[j]) <= cutoff) expected.insert(j);
    }
    const auto got = list.neighbors(i);
    std::set<std::uint32_t> actual(got.begin(), got.end());
    EXPECT_EQ(actual, expected) << "atom " << i;
  }
}

TEST(NbList, PairsAreSymmetric) {
  const auto pts = random_points(300, 9, 20.0);
  const NbList list = NbList::build(pts, {.cutoff = 8.0, .max_bytes = 0});
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      const auto back = list.neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(NbList, MemoryGrowsCubicallyWithCutoff) {
  // The §II claim driving the whole octree-vs-nblist argument.
  const auto m = mol::generate_protein({.target_atoms = 3000, .seed = 10});
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const NbList c6 = NbList::build(pts, {.cutoff = 6.0, .max_bytes = 0});
  const NbList c12 = NbList::build(pts, {.cutoff = 12.0, .max_bytes = 0});
  const double growth = static_cast<double>(c12.total_pairs()) /
                        static_cast<double>(c6.total_pairs());
  // (12/6)³ = 8 in the bulk; surface effects pull it below.
  EXPECT_GT(growth, 3.0);
  EXPECT_LT(growth, 9.0);
}

TEST(NbList, ByteBudgetThrowsSimulatedOom) {
  const auto pts = random_points(2000, 11, 10.0);  // dense
  EXPECT_THROW(NbList::build(pts, {.cutoff = 15.0, .max_bytes = 1024}),
               octree::NbListOutOfMemory);
  // Unlimited budget succeeds on the same input.
  EXPECT_NO_THROW(NbList::build(pts, {.cutoff = 15.0, .max_bytes = 0}));
}

TEST(NbList, EmptyAndSinglePoint) {
  const NbList empty = NbList::build({}, {.cutoff = 5.0});
  EXPECT_EQ(empty.num_points(), 0u);
  const std::vector<geom::Vec3> one = {{0, 0, 0}};
  const NbList single = NbList::build(one, {.cutoff = 5.0});
  EXPECT_EQ(single.num_points(), 1u);
  EXPECT_TRUE(single.neighbors(0).empty());
}

TEST(NbList, OctreeFootprintIndependentOfCutoffUnlikeNblist) {
  const auto m = mol::generate_protein({.target_atoms = 2000, .seed = 12});
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  const Octree t = Octree::build(pts);
  const std::size_t octree_bytes = t.footprint_bytes();  // no cutoff at all
  const NbList small_cut = NbList::build(pts, {.cutoff = 4.0, .max_bytes = 0});
  const NbList big_cut = NbList::build(pts, {.cutoff = 16.0, .max_bytes = 0});
  EXPECT_GT(big_cut.footprint_bytes(), 4 * small_cut.footprint_bytes());
  EXPECT_LT(octree_bytes, big_cut.footprint_bytes());
}

// ---- serialization -----------------------------------------------------------

#include <sstream>

#include "octgb/octree/serialize.hpp"
#include "octgb/util/check.hpp"

TEST(OctreeSerialize, RoundTripPreservesEverything) {
  const auto pts = random_points(1234, 21);
  const Octree original = Octree::build(pts);
  std::stringstream buf;
  octree::write_octree(original, buf);
  const Octree loaded = octree::read_octree(buf);
  EXPECT_TRUE(loaded.validate());
  ASSERT_EQ(loaded.nodes().size(), original.nodes().size());
  ASSERT_EQ(loaded.num_points(), original.num_points());
  for (std::size_t i = 0; i < original.nodes().size(); ++i) {
    EXPECT_EQ(loaded.node(i).centroid, original.node(i).centroid);
    EXPECT_EQ(loaded.node(i).begin, original.node(i).begin);
    EXPECT_EQ(loaded.node(i).first_child, original.node(i).first_child);
  }
  EXPECT_EQ(loaded.leaf_ids(), original.leaf_ids());
  EXPECT_EQ(loaded.max_depth(), original.max_depth());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(loaded.points()[i], original.points()[i]);
}

TEST(OctreeSerialize, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not an octree");
  EXPECT_THROW(octree::read_octree(garbage), octgb::util::CheckError);

  const auto pts = random_points(100, 22);
  const Octree t = Octree::build(pts);
  std::stringstream buf;
  octree::write_octree(t, buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);  // truncate
  std::stringstream truncated(bytes);
  EXPECT_THROW(octree::read_octree(truncated), octgb::util::CheckError);
}

// ---- Morton location codes ---------------------------------------------------

#include "octgb/octree/morton.hpp"

namespace {

constexpr std::uint32_t kCoordMax = (1u << octree::kMortonMaxBits) - 1;

std::uint32_t random_coord(util::Xoshiro256& rng) {
  return static_cast<std::uint32_t>(rng()) & kCoordMax;
}

}  // namespace

TEST(Morton, SpreadCompactRoundTripsEvery21BitValue) {
  util::Xoshiro256 rng(31);
  std::vector<std::uint64_t> values = {0, 1, kCoordMax, kCoordMax - 1,
                                       1u << 20, 0x155555, 0x0aaaaa};
  for (int i = 0; i < 2000; ++i) values.push_back(random_coord(rng));
  for (const std::uint64_t v : values) {
    EXPECT_EQ(octree::morton_compact(octree::morton_spread(v)), v);
    // Spread bits stay inside the every-third-bit mask.
    EXPECT_EQ(octree::morton_spread(v) & ~0x1249249249249249ULL, 0u);
  }
}

TEST(Morton, EncodeDecodeIdentityIncludingBoundaryCoords) {
  util::Xoshiro256 rng(32);
  std::vector<octree::MortonCoords> coords = {
      {0, 0, 0},          {kCoordMax, kCoordMax, kCoordMax},
      {kCoordMax, 0, 0},  {0, kCoordMax, 0},
      {0, 0, kCoordMax},  {1, 2, 4},
      {1u << 20, 1, 0}};
  for (int i = 0; i < 2000; ++i)
    coords.push_back({random_coord(rng), random_coord(rng), random_coord(rng)});
  for (const auto& c : coords) {
    const std::uint64_t key = octree::morton_encode(c.x, c.y, c.z);
    EXPECT_EQ(key >> 63, 0u);  // 3×21 bits leave the top bit clear
    EXPECT_EQ(octree::morton_decode(key), c);
  }
}

TEST(Morton, DigitMatchesLegacyOctantNumbering) {
  // The whole linear-octree construction rests on this: the 3-bit digit at
  // level L is exactly the (x | y<<1 | z<<2) octant index the recursive
  // partitioner would pick at that depth.
  util::Xoshiro256 rng(33);
  const int bits = octree::kMortonMaxBits;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t x = random_coord(rng), y = random_coord(rng),
                        z = random_coord(rng);
    const std::uint64_t key = octree::morton_encode(x, y, z);
    for (int level = 0; level < bits; ++level) {
      const int shift = bits - 1 - level;
      const unsigned expected = ((x >> shift) & 1u) | (((y >> shift) & 1u) << 1)
                                | (((z >> shift) & 1u) << 2);
      EXPECT_EQ(octree::morton_digit(key, level, bits), expected);
    }
  }
}

TEST(Morton, CommonLevelsCountsSharedPrefixDigits) {
  const int bits = octree::kMortonMaxBits;
  const std::uint64_t a = octree::morton_encode(5, 9, 2);
  EXPECT_EQ(octree::morton_common_levels(a, a, bits), bits);
  // Flip the x-bit of the top-level digit: diverges immediately.
  const std::uint64_t top = octree::morton_encode(1u << 20, 0, 0);
  EXPECT_EQ(octree::morton_common_levels(a, a ^ top, bits), 0);
  // Flip the deepest digit only: agreement on all but the last level.
  EXPECT_EQ(octree::morton_common_levels(a, a ^ 1u, bits), bits - 1);
}

TEST(Morton, SortedKeyOrderIsDepthFirstOctantOrder) {
  // On a built tree: every node's key range shares the node's digit path,
  // and sibling ranges appear in strictly increasing digit order — sorted
  // key order *is* depth-first traversal order.
  const auto pts = random_points(2500, 34);
  const Octree t = Octree::build(pts);
  ASSERT_TRUE(t.has_morton());
  const auto keys = t.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  const int bits = t.grid().bits;
  for (const auto& n : t.nodes()) {
    if (n.is_leaf()) continue;
    unsigned prev_digit = 0;
    for (std::uint8_t c = 0; c < n.child_count; ++c) {
      const auto& ch = t.node(n.first_child + c);
      // Within one child, every key carries the same digit at the
      // parent's depth; across siblings those digits strictly increase.
      const unsigned digit =
          octree::morton_digit(keys[ch.begin], n.depth, bits);
      EXPECT_EQ(octree::morton_digit(keys[ch.end - 1], n.depth, bits), digit);
      if (c > 0) {
        EXPECT_GT(digit, prev_digit);
      }
      prev_digit = digit;
    }
  }
}

TEST(MortonGridT, KeyOfCellCenterRoundTrips) {
  const auto pts = random_points(600, 35);
  const octree::MortonGrid g = octree::MortonGrid::of(pts, 12);
  for (const auto& p : pts) {
    const std::uint64_t k = g.key(p);
    EXPECT_EQ(g.key(g.cell_center(k)), k);
  }
}

TEST(MortonGridT, QuantizeClampsOutOfCubeCoordinates) {
  const std::vector<geom::Vec3> pts = {{0, 0, 0}, {10, 10, 10}};
  const octree::MortonGrid g = octree::MortonGrid::of(pts, 8);
  EXPECT_TRUE(g.contains({5, 5, 5}));
  EXPECT_FALSE(g.contains({11, 5, 5}));
  EXPECT_EQ(g.quantize(g.origin.x - 1.0, g.origin.x), 0u);
  const double side_len = g.cell * g.side();
  EXPECT_EQ(g.quantize(g.origin.x + side_len + 1.0, g.origin.x),
            g.side() - 1);
  // Exact corner coordinates land in the first / last cell.
  EXPECT_EQ(g.quantize(g.origin.x, g.origin.x), 0u);
  EXPECT_LE(g.quantize(g.origin.x + side_len, g.origin.x), g.side() - 1);
}

TEST(Morton, CoincidentPointsShareOneKeyAndOneLeaf) {
  // Equal keys can never be separated by more digits: the Morton builder
  // makes the run a leaf immediately (no depth-capped degenerate chains).
  std::vector<geom::Vec3> pts(100, {1, 1, 1});
  BuildParams params;
  params.max_leaf_size = 8;
  const Octree t = Octree::build(pts, params);
  EXPECT_TRUE(t.validate());
  ASSERT_EQ(t.nodes().size(), 1u);  // root itself is the leaf
  EXPECT_EQ(t.root().size(), 100u);
}

TEST(OctreeSerialize, V2RoundTripsMortonStateBitExact) {
  const auto pts = random_points(900, 36);
  const Octree original = Octree::build(pts);
  ASSERT_TRUE(original.has_morton());
  std::stringstream buf;
  octree::write_octree(original, buf);
  const Octree loaded = octree::read_octree(buf);
  EXPECT_TRUE(loaded.validate());
  ASSERT_TRUE(loaded.has_morton());
  EXPECT_EQ(loaded.grid(), original.grid());
  ASSERT_EQ(loaded.keys().size(), original.keys().size());
  EXPECT_TRUE(std::equal(loaded.keys().begin(), loaded.keys().end(),
                         original.keys().begin()));
  // The SoA planes are derived state but must come back identical too.
  EXPECT_TRUE(std::equal(loaded.soa_x().begin(), loaded.soa_x().end(),
                         original.soa_x().begin()));
  // A loaded tree keeps its re-sort capability (grid + keys intact).
  std::vector<geom::Vec3> moved(pts.begin(), pts.end());
  moved[7].x += 0.5;
  Octree mutable_loaded = loaded;
  EXPECT_TRUE(mutable_loaded.resort(moved, {}));
  EXPECT_TRUE(mutable_loaded.validate());
}

TEST(OctreeSerialize, LegacyTreeRoundTripsThroughV2WithoutMortonState) {
  const auto pts = random_points(400, 37);
  const Octree legacy = Octree::build_legacy(pts);
  ASSERT_FALSE(legacy.has_morton());
  std::stringstream buf;
  octree::write_octree(legacy, buf);
  const Octree loaded = octree::read_octree(buf);
  EXPECT_TRUE(loaded.validate());
  EXPECT_FALSE(loaded.has_morton());
  EXPECT_TRUE(loaded.keys().empty());
  EXPECT_EQ(loaded.nodes().size(), legacy.nodes().size());
}

TEST(OctreeSerialize, V1StreamStillLoads) {
  // Synthesize a v1 stream from a v2 one: a Morton-less tree's v2 tail is
  // exactly two empty tagged sections (24-byte headers, no payload), so
  // stripping them and patching the version field back to 1 reproduces the
  // old format byte for byte.
  const auto pts = random_points(350, 38);
  const Octree legacy = Octree::build_legacy(pts);
  std::stringstream buf;
  octree::write_octree(legacy, buf);
  std::string bytes = buf.str();
  ASSERT_GT(bytes.size(), 48u);
  bytes.resize(bytes.size() - 48);  // drop the "mkey" + "mgrd" sections
  bytes[8] = 1;                     // version field (after the u64 magic)
  std::stringstream v1(bytes);
  const Octree loaded = octree::read_octree(v1);
  EXPECT_TRUE(loaded.validate());
  EXPECT_FALSE(loaded.has_morton());
  ASSERT_EQ(loaded.nodes().size(), legacy.nodes().size());
  for (std::size_t i = 0; i < legacy.nodes().size(); ++i) {
    EXPECT_EQ(loaded.node(i).centroid, legacy.node(i).centroid);
    EXPECT_EQ(loaded.node(i).begin, legacy.node(i).begin);
    EXPECT_EQ(loaded.node(i).end, legacy.node(i).end);
  }
}

TEST(OctreeSerialize, FileRoundTrip) {
  const auto pts = random_points(300, 23);
  const Octree t = Octree::build(pts);
  const std::string path = "serialize_test.octree";
  octree::write_octree_file(t, path);
  const Octree loaded = octree::read_octree_file(path);
  EXPECT_TRUE(loaded.validate());
  EXPECT_EQ(loaded.num_points(), t.num_points());
  std::remove(path.c_str());
  EXPECT_THROW(octree::read_octree_file(path), octgb::util::CheckError);
}
