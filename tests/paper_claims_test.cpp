// Direct assertions of the paper's headline quantitative claims that are
// not already pinned down by the per-module suites.

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/core/engine.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/core/session.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/mol/zdock.hpp"
#include "octgb/sim/cluster.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/simd/types.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;

TEST(PaperClaims, OctreeWorkIsSubQuadraticInAtoms) {
  // The whole point of the near–far decomposition: total interaction work
  // grows clearly slower than M² on shell geometries. Fit the exponent
  // over a 4× size range and require it well below 2 (naive) — the paper
  // claims "preferably linear"; the measured exponent on capsid shells
  // lands near ~1.2.
  std::vector<double> log_m, log_w;
  for (std::size_t n : {8000u, 16000u, 32000u}) {
    const auto m = mol::generate_virus_shell({.target_atoms = n, .seed = 7});
    const auto surf = surface::build_surface(m, {.subdivision = 0});
    core::GBEngine engine(m, surf);
    const auto r = engine.compute();
    log_m.push_back(std::log(static_cast<double>(m.size())));
    log_w.push_back(std::log(static_cast<double>(
        r.work.total_interactions())));
  }
  // Least-squares slope of log W vs log M.
  const std::size_t k = log_m.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < k; ++i) {
    sx += log_m[i];
    sy += log_w[i];
    sxx += log_m[i] * log_m[i];
    sxy += log_m[i] * log_w[i];
  }
  const double slope = (k * sxy - sx * sy) / (k * sxx - sx * sx);
  EXPECT_LT(slope, 1.6) << "work should scale clearly below M^2";
  EXPECT_GT(slope, 0.8) << "and at least linearly";
}

TEST(PaperClaims, HybridBeatsPureMpiAtFullClusterScale) {
  // §V-B/§V-C: at 144+ cores on a virus shell, OCT_MPI+CILK's modeled
  // total time is at or below OCT_MPI's (less communication, less cache
  // pressure, smaller straggler exposure).
  const auto m = mol::generate_virus_shell({.target_atoms = 20000, .seed = 7});
  const auto surf = surface::build_surface(m, {.subdivision = 0});
  core::GBEngine engine(m, surf);

  sim::ClusterConfig mpi;
  mpi.ranks = 144;
  mpi.threads_per_rank = 1;
  mpi.topology.ranks_per_node = 12;
  sim::ClusterConfig hyb;
  hyb.ranks = 24;
  hyb.threads_per_rank = 6;
  hyb.topology.ranks_per_node = 2;

  const auto rm = sim::simulate_cluster(engine, mpi);
  const auto rh = sim::simulate_cluster(engine, hyb);
  ASSERT_EQ(rm.total_cores, rh.total_cores);
  EXPECT_LE(rh.total_seconds, rm.total_seconds * 1.05);
  // And the energies are identical — same physics, different schedule.
  EXPECT_NEAR(rh.epol, rm.epol, 1e-9 * std::abs(rm.epol));
}

TEST(PaperClaims, SpeedupVsSerialGrowsWithCores) {
  // Fig. 5's basic property, asserted end to end on measured work: the
  // modeled time at P·12 cores shrinks monotonically and the 12-node
  // speedup w.r.t. 1 node exceeds 6× (the paper reaches ~8–10× there).
  const auto m = mol::generate_virus_shell({.target_atoms = 15000, .seed = 7});
  const auto surf = surface::build_surface(m, {.subdivision = 0});
  core::GBEngine engine(m, surf);
  double t1 = 0;
  double prev = 1e300;
  for (int nodes : {1, 2, 4, 8, 12}) {
    sim::ClusterConfig cfg;
    cfg.ranks = nodes * 12;
    cfg.threads_per_rank = 1;
    const auto r = sim::simulate_cluster(engine, cfg);
    if (nodes == 1) t1 = r.total_seconds;
    EXPECT_LT(r.total_seconds, prev) << nodes << " nodes";
    prev = r.total_seconds;
  }
  // The paper reaches ~8-10x on the 6M-atom BTV; this 15k-atom test shell
  // leaves more static-division imbalance per rank, so demand a bit less.
  EXPECT_GT(t1 / prev, 5.0);
}

TEST(PaperClaims, ErrorBudgetHoldsAcrossTheSizeLadder) {
  // "<1% error w.r.t. the naive exact algorithm" at ε = 0.9/0.9, checked
  // at three points across the ZDock size range (small/medium/large-ish;
  // the full-ladder check lives in bench_fig9_energy).
  for (const char* name : {"1PPE_l_b", "1WQ1_l_b", "1DE4_r_b"}) {
    const auto m = mol::make_benchmark_molecule(name);
    const auto surf = surface::build_surface(m);
    const auto naive_born = core::naive_born_radii(m, surf);
    const double naive_e = core::naive_epol(m, naive_born);
    core::GBEngine engine(m, surf);
    const double e = engine.compute().epol;
    EXPECT_LT(std::abs(e - naive_e) / std::abs(naive_e), 0.01) << name;
  }
}

TEST(PaperClaims, MixedPrecisionStaysInsideThePaperAccuracyEnvelope) {
  // The explicit-SIMD float-stream mode (DESIGN.md §2.7) must not consume
  // the paper's "<1% error w.r.t. the naive exact algorithm" budget: at
  // every compiled-and-runnable width, Mixed-precision Epol on the fig.
  // 8/9 benchmark structures stays inside the same envelope as Double,
  // and the float rounding itself perturbs the energy by far less than
  // the tree approximation does.
  const simd::VectorIsa widths[] = {simd::VectorIsa::V128,
                                    simd::VectorIsa::V256,
                                    simd::VectorIsa::V512};
  for (const char* name : {"1PPE_l_b", "1WQ1_l_b", "1DE4_r_b"}) {
    const auto m = mol::make_benchmark_molecule(name);
    const auto surf = surface::build_surface(m);
    const auto naive_born = core::naive_born_radii(m, surf);
    const double naive_e = core::naive_epol(m, naive_born);
    core::EngineConfig dcfg;
    dcfg.approx.vector = {simd::VectorIsa::Scalar, simd::Precision::Double};
    const double e_double = core::GBEngine(m, surf, dcfg).compute().epol;
    for (simd::VectorIsa isa : widths) {
      if (!simd::isa_available(isa)) continue;
      core::EngineConfig cfg;
      cfg.approx.vector = {isa, simd::Precision::Mixed};
      const double e_mixed = core::GBEngine(m, surf, cfg).compute().epol;
      EXPECT_LT(std::abs(e_mixed - naive_e) / std::abs(naive_e), 0.01)
          << name << " " << simd::isa_name(isa);
      // Float streams contribute well under a tenth of the budget on
      // their own, independent of width.
      EXPECT_LT(std::abs(e_mixed - e_double) / std::abs(e_double), 1e-3)
          << name << " " << simd::isa_name(isa);
    }
  }
}

TEST(PaperClaims, CrossScreenDeviationIsBoundedUnderEveryWidth) {
  // Pose screening is the throughput consumer of the vector kernels; the
  // acceptance bound is that switching width and/or precision moves a
  // CrossScreen complex energy by at most 0.7% relative to the scalar
  // double reference — small against the mode's own few-percent envelope
  // vs Full mode, so kernel choice never dominates a screening decision.
  mol::Molecule rec = mol::generate_protein({.target_atoms = 500, .seed = 7});
  mol::Molecule lig = mol::generate_protein({.target_atoms = 120, .seed = 8});
  lig.transform(geom::RigidTransform::translate({15.0, 0, 0}));
  mol::Molecule combined;
  for (const auto& a : rec.atoms()) combined.add_atom(a);
  const std::size_t ligand_begin = combined.size();
  for (const auto& a : lig.atoms()) combined.add_atom(a);
  const auto surf = surface::build_surface(combined, {.subdivision = 1});

  std::vector<geom::RigidTransform> poses;
  for (double shift : {0.0, 4.0, 12.0})
    poses.push_back(geom::RigidTransform::translate({shift, 0, 0}));

  const auto screen_epols = [&](simd::VectorParams vec) {
    core::EngineConfig cfg;
    cfg.approx.vector = vec;
    core::ScoringSession session(combined, surf, cfg, {.subdivision = 1});
    return session.score_poses(poses, ligand_begin,
                               core::PoseMode::CrossScreen);
  };

  const auto ref =
      screen_epols({simd::VectorIsa::Scalar, simd::Precision::Double});
  for (simd::VectorIsa isa : {simd::VectorIsa::V128, simd::VectorIsa::V256,
                              simd::VectorIsa::V512}) {
    if (!simd::isa_available(isa)) continue;
    for (simd::Precision prec :
         {simd::Precision::Double, simd::Precision::Mixed}) {
      const auto got = screen_epols({isa, prec});
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_LT(std::abs(got[i].epol - ref[i].epol) /
                      std::abs(ref[i].epol),
                  0.007)
            << simd::isa_name(isa) << " pose " << i;
      }
    }
  }
}
