// Tests for the baseline GB engines (pairwise descreening, GBr6 volume
// method, package stand-ins).

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/baselines/descreening.hpp"
#include "octgb/baselines/gbr6.hpp"
#include "octgb/baselines/packages.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;
using baselines::BornModel;
using baselines::DescreeningParams;
using baselines::pairwise_born_radii;

namespace {

octree::NbList full_nblist(const mol::Molecule& m, double cutoff = 1e3) {
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  return octree::NbList::build(pts, {.cutoff = cutoff, .max_bytes = 0});
}

}  // namespace

TEST(Descreening, IsolatedAtomKeepsReducedRadius) {
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 1.7, 0.2, mol::Element::C});
  const auto nb = full_nblist(m);
  for (BornModel model : {BornModel::HCT, BornModel::OBC}) {
    const auto born = pairwise_born_radii(m, nb, model);
    ASSERT_EQ(born.size(), 1u);
    // No neighbors → Born radius = intrinsic (clamped to vdW).
    EXPECT_NEAR(born[0], 1.7, 0.12) << baselines::born_model_name(model);
  }
}

TEST(Descreening, NeighborsIncreaseBornRadius) {
  // Descreening removes solvent: buried atoms get larger radii.
  mol::Molecule lone, pair;
  lone.add_atom({{0, 0, 0}, 1.7, 0, mol::Element::C});
  pair.add_atom({{0, 0, 0}, 1.7, 0, mol::Element::C});
  pair.add_atom({{3.0, 0, 0}, 1.7, 0, mol::Element::C});
  for (BornModel model :
       {BornModel::HCT, BornModel::OBC, BornModel::Still}) {
    const auto lone_born = pairwise_born_radii(lone, full_nblist(lone), model);
    const auto pair_born = pairwise_born_radii(pair, full_nblist(pair), model);
    EXPECT_GT(pair_born[0], lone_born[0] - 1e-9)
        << baselines::born_model_name(model);
  }
}

TEST(Descreening, BuriedAtomLargerThanSurfaceAtom) {
  // 3x3x3 grid: the center atom (index 13) is surrounded on all sides,
  // the corner atom (index 0) is the most exposed.
  mol::Molecule m;
  for (int x = 0; x < 3; ++x)
    for (int y = 0; y < 3; ++y)
      for (int z = 0; z < 3; ++z)
        m.add_atom({{x * 2.0, y * 2.0, z * 2.0}, 1.7, 0, mol::Element::C});
  const auto nb = full_nblist(m);
  for (BornModel model :
       {BornModel::HCT, BornModel::OBC, BornModel::Still}) {
    const auto born = pairwise_born_radii(m, nb, model);
    EXPECT_GT(born[13], born[0]) << baselines::born_model_name(model);
    EXPECT_NEAR(born[0], born[26], 1e-9);  // opposite corners symmetric
  }
}

TEST(Descreening, ObcTanhRescalingKeepsRadiiFinite) {
  // Dense cluster: HCT can overshoot 1/R → 0; OBC's tanh keeps it sane.
  mol::Molecule m;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y)
      for (int z = 0; z < 4; ++z)
        m.add_atom({{x * 2.0, y * 2.0, z * 2.0}, 1.7, 0, mol::Element::C});
  const auto nb = full_nblist(m);
  const auto born = pairwise_born_radii(m, nb, BornModel::OBC);
  for (double r : born) {
    EXPECT_GT(r, 1.0);
    EXPECT_LT(r, 50.0);
  }
}

TEST(Descreening, CorrelatesWithSurfaceR6OnProteins) {
  // Different models, same physics: pairwise radii should correlate with
  // the surface-based reference (not match exactly).
  const auto m = mol::generate_protein({.target_atoms = 400, .seed = 41});
  const auto surf = surface::build_surface(m, {.subdivision = 1});
  const auto ref = core::naive_born_radii(m, surf);
  const auto born = pairwise_born_radii(m, full_nblist(m, 20.0),
                                        BornModel::HCT);
  // Rank correlation proxy: mean radii of the most/least buried quartiles
  // must order the same way.
  std::vector<std::size_t> order(m.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ref[a] < ref[b]; });
  double low = 0, high = 0;
  const std::size_t q = m.size() / 4;
  for (std::size_t i = 0; i < q; ++i) {
    low += born[order[i]];
    high += born[order[m.size() - 1 - i]];
  }
  EXPECT_GT(high / q, low / q);
}

// ---- GBr6 --------------------------------------------------------------------

TEST(Gbr6, IsolatedSphereRecoversRadius) {
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 2.0, 1.0, mol::Element::C});
  baselines::Gbr6Params params;
  params.grid_spacing = 0.3;
  const auto born = baselines::gbr6_born_radii(m, params);
  ASSERT_EQ(born.size(), 1u);
  // Exterior integral over the molecule minus the ball is ~0 → R ≈ ρ,
  // biased slightly high by the conservative half-cell marking radius.
  EXPECT_NEAR(born[0], 2.0, 0.2);
}

TEST(Gbr6, BuriedAtomLargerRadius) {
  mol::Molecule m;
  for (int i = -2; i <= 2; ++i)
    m.add_atom({{i * 2.0, 0, 0}, 1.7, 0, mol::Element::C});
  baselines::Gbr6Params params;
  params.grid_spacing = 0.4;
  const auto born = baselines::gbr6_born_radii(m, params);
  EXPECT_GT(born[2], born[0]);
}

TEST(Gbr6, GridBudgetThrowsSimulatedOom) {
  const auto m = mol::generate_protein({.target_atoms = 500, .seed = 43});
  baselines::Gbr6Params params;
  params.grid_spacing = 0.5;
  params.max_bytes = 64;  // absurdly small
  EXPECT_THROW(baselines::gbr6_born_radii(m, params),
               octree::NbListOutOfMemory);
}

TEST(Gbr6, CountsGridWork) {
  const auto m = mol::generate_protein({.target_atoms = 150, .seed = 44});
  perf::WorkCounters wc;
  baselines::gbr6_born_radii(m, {}, &wc);
  EXPECT_GT(wc.grid_cells, m.size() * 100);
}

// ---- packages -----------------------------------------------------------------

TEST(Packages, RegistryMatchesTableII) {
  const auto reg = baselines::package_registry();
  ASSERT_EQ(reg.size(), 5u);
  const auto* amber = baselines::find_package("Amber 12");
  ASSERT_NE(amber, nullptr);
  EXPECT_STREQ(amber->gb_model, "HCT");
  const auto* namd = baselines::find_package("NAMD 2.9");
  ASSERT_NE(namd, nullptr);
  EXPECT_EQ(namd->born_model, BornModel::OBC);
  const auto* tinker = baselines::find_package("Tinker 6.0");
  ASSERT_NE(tinker, nullptr);
  EXPECT_EQ(tinker->parallelism, baselines::Parallelism::SharedMemory);
  const auto* gbr6 = baselines::find_package("GBr6");
  ASSERT_NE(gbr6, nullptr);
  EXPECT_TRUE(gbr6->volume_gbr6);
  EXPECT_EQ(gbr6->parallelism, baselines::Parallelism::Serial);
  EXPECT_EQ(baselines::find_package("CHARMM"), nullptr);
}

TEST(Packages, CutoffEpolApproachesNaiveForLargeCutoff) {
  const auto m = mol::generate_protein({.target_atoms = 300, .seed = 45});
  const auto surf = surface::build_surface(m, {.subdivision = 1});
  const auto born = core::naive_born_radii(m, surf);
  const double exact = core::naive_epol(m, born);
  const auto nb = full_nblist(m, 1e3);  // covers everything
  const double truncated = baselines::cutoff_epol(m, nb, born, {});
  EXPECT_NEAR(truncated, exact, 1e-9 * std::abs(exact));
}

TEST(Packages, CutoffTruncationLosesFarPairs) {
  const auto m = mol::generate_protein({.target_atoms = 800, .seed = 46});
  const auto surf = surface::build_surface(m, {.subdivision = 1});
  const auto born = core::naive_born_radii(m, surf);
  const double exact = core::naive_epol(m, born);
  const double cut8 =
      baselines::cutoff_epol(m, full_nblist(m, 8.0), born, {});
  EXPECT_NE(cut8, exact);
  // Still the right order of magnitude (cutoffs keep the dominant near
  // field).
  EXPECT_LT(std::abs(cut8 - exact), 0.5 * std::abs(exact));
}

class PackageRun : public ::testing::TestWithParam<const char*> {};

TEST_P(PackageRun, ProducesNegativeEnergyAndPositiveWork) {
  const auto* spec = baselines::find_package(GetParam());
  ASSERT_NE(spec, nullptr);
  const auto m = mol::generate_protein({.target_atoms = 350, .seed = 47});
  const auto result = baselines::run_package(*spec, m);
  EXPECT_FALSE(result.out_of_memory);
  EXPECT_LT(result.epol, 0.0);
  EXPECT_EQ(result.born.size(), m.size());
  EXPECT_GT(result.work.pairlist_pairs + result.work.grid_cells, 0u);
  EXPECT_GT(result.modeled_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPackages, PackageRun,
                         ::testing::Values("Amber 12", "Gromacs 4.5.3",
                                           "NAMD 2.9", "Tinker 6.0", "GBr6"));

TEST(Packages, TinkerAndGbr6HitMemoryCeilingsOnLargeMolecules) {
  // §V-D: Tinker fails above ~12k atoms, GBr6 above ~13k. Use the modeled
  // budgets, not real allocation.
  const auto big = mol::generate_protein({.target_atoms = 14000, .seed = 48});
  const auto tinker = baselines::run_package(
      *baselines::find_package("Tinker 6.0"), big);
  EXPECT_TRUE(tinker.out_of_memory);
  const auto gbr6 =
      baselines::run_package(*baselines::find_package("GBr6"), big);
  EXPECT_TRUE(gbr6.out_of_memory);
  // Amber keeps going.
  const auto amber = baselines::run_package(
      *baselines::find_package("Amber 12"), big);
  EXPECT_FALSE(amber.out_of_memory);
}

TEST(Packages, CutoffOverrideShrinksWork) {
  const auto m = mol::generate_protein({.target_atoms = 2000, .seed = 49});
  const auto* spec = baselines::find_package("Gromacs 4.5.3");
  const auto wide = baselines::run_package(*spec, m);
  const auto narrow = baselines::run_package(*spec, m, {}, 0, 6.0);
  EXPECT_LT(narrow.work.pairlist_pairs, wide.work.pairlist_pairs);
  EXPECT_LT(narrow.nblist_bytes, wide.nblist_bytes);
}

TEST(Packages, EnergiesAgreeAcrossPackagesWithinModelSpread) {
  // Fig. 9's qualitative claim: HCT/OBC cutoff engines land in the same
  // ballpark as the exact algorithm; Still (Tinker) sits visibly lower.
  const auto m = mol::generate_protein({.target_atoms = 500, .seed = 50});
  const auto surf = surface::build_surface(m, {.subdivision = 1});
  const auto born = core::naive_born_radii(m, surf);
  const double naive_e = core::naive_epol(m, born);
  const auto amber = baselines::run_package(
      *baselines::find_package("Amber 12"), m);
  const auto tinker = baselines::run_package(
      *baselines::find_package("Tinker 6.0"), m);
  EXPECT_LT(amber.epol, 0.0);
  EXPECT_LT(std::abs(amber.epol - naive_e), 0.5 * std::abs(naive_e));
  // Tinker magnitude noticeably smaller than the exact one.
  EXPECT_LT(std::abs(tinker.epol), std::abs(amber.epol));
}
