// End-to-end integration tests: the full pipeline from a benchmark
// molecule through surface, engines, hybrid runtime, simulation harness
// and baselines — cross-checking that every path agrees on the physics.

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/octgb.hpp"

using namespace octgb;

namespace {

/// One shared mid-size problem (built once for the whole suite).
struct Pipeline {
  mol::Molecule molecule = mol::make_benchmark_molecule("1NSN_l_b");  // ~1.3k
  surface::Surface surf = surface::build_surface(molecule);
  core::GBEngine engine{molecule, surf};
  std::vector<double> naive_born = core::naive_born_radii(molecule, surf);
  double naive_epol = core::naive_epol(molecule, naive_born);
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

}  // namespace

TEST(Integration, EveryExecutionPathAgreesOnEnergy) {
  Pipeline& p = pipeline();
  const double reference = p.engine.compute().epol;

  // Serial engine within the paper's error budget of the exact value.
  EXPECT_LT(std::abs(reference - p.naive_epol) / std::abs(p.naive_epol),
            0.01);

  // OCT_CILK (scheduler).
  {
    ws::Scheduler sched(4);
    const double e = p.engine.compute(&sched).epol;
    EXPECT_NEAR(e, reference, 1e-8 * std::abs(reference));
  }
  // OCT_MPI and OCT_MPI+CILK on the real runtime.
  for (auto [ranks, threads] : {std::pair{3, 1}, std::pair{2, 2}}) {
    core::HybridConfig cfg;
    cfg.ranks = ranks;
    cfg.threads_per_rank = threads;
    const double e = core::run_hybrid(p.engine, cfg).epol;
    EXPECT_NEAR(e, reference, 1e-8 * std::abs(reference))
        << "P=" << ranks << " p=" << threads;
  }
  // Simulation harness.
  {
    sim::ClusterConfig cfg;
    cfg.ranks = 6;
    const double e = sim::simulate_cluster(p.engine, cfg).epol;
    EXPECT_NEAR(e, reference, 1e-9 * std::abs(reference));
  }
  // Data-distributed variant.
  {
    const double e = core::run_data_distributed(p.engine, 4).epol;
    EXPECT_NEAR(e, reference, 1e-9 * std::abs(reference));
  }
  // Dual-tree legacy algorithm: same physics, different approximation
  // pattern — agrees within the approximation band.
  {
    const double e = p.engine.compute_dual().epol;
    EXPECT_NEAR(e, reference, 0.01 * std::abs(reference));
  }
}

TEST(Integration, BaselinesLandInTheSamePhysicalRegime) {
  Pipeline& p = pipeline();
  for (const auto& spec : baselines::package_registry()) {
    const auto r = baselines::run_package(spec, p.molecule);
    ASSERT_FALSE(r.out_of_memory) << spec.name;
    EXPECT_LT(r.epol, 0.0) << spec.name;
    // Within a factor of ~3 of the exact energy — different GB flavors,
    // same molecule (Fig. 9's qualitative agreement).
    EXPECT_GT(std::abs(r.epol), std::abs(p.naive_epol) / 3.0) << spec.name;
    EXPECT_LT(std::abs(r.epol), std::abs(p.naive_epol) * 3.0) << spec.name;
  }
}

TEST(Integration, BornRadiiPhysicallyOrdered) {
  // Every engine's Born radii must respect basic physics: bounded below
  // by the vdW radius, bounded above by the molecule's extent.
  Pipeline& p = pipeline();
  const auto result = p.engine.compute();
  const double diameter = p.molecule.bounds().extent().norm() + 10.0;
  for (std::size_t i = 0; i < result.born.size(); ++i) {
    EXPECT_GE(result.born[i], p.molecule.atom(i).radius - 1e-9);
    EXPECT_LE(result.born[i], std::max(diameter, core::kMaxBornRadius));
  }
}

TEST(Integration, TransformedMoleculeSameEnergy) {
  // Rigid motion cannot change the self-energy of a molecule: rebuild
  // the pipeline after a rotation+translation and compare.
  Pipeline& p = pipeline();
  mol::Molecule moved = p.molecule;
  moved.transform({geom::Mat3::euler_zyx(0.7, -0.2, 1.1), {25, -40, 13}});
  const auto surf = surface::build_surface(moved);
  core::GBEngine engine(moved, surf);
  const double e_moved = engine.compute().epol;
  const double e_orig = p.engine.compute().epol;
  // Surface sampling is rotation-variant (icosphere orientation is
  // fixed), so allow the approximation band rather than exact equality.
  EXPECT_NEAR(e_moved, e_orig, 0.01 * std::abs(e_orig));
}

TEST(Integration, EndToEndPdbFileWorkflow) {
  Pipeline& p = pipeline();
  const std::string path = "integration_roundtrip.pdb";
  ASSERT_TRUE(mol::write_pdb_file(p.molecule, path));
  const mol::Molecule parsed = mol::read_pdb_file(path);
  ASSERT_EQ(parsed.size(), p.molecule.size());
  const auto surf = surface::build_surface(parsed);
  core::GBEngine engine(parsed, surf);
  const double e = engine.compute().epol;
  const double reference = p.engine.compute().epol;
  EXPECT_NEAR(e, reference, 0.005 * std::abs(reference));
  std::remove(path.c_str());
}

TEST(Integration, ZdockSweepSmallMoleculesUnderErrorBudget) {
  // Property sweep across the small end of the benchmark registry:
  // default parameters must keep every molecule under the 1 % budget.
  for (const auto& entry : mol::zdock_set().subspan(0, 8)) {
    const auto molecule = mol::make_benchmark_molecule(entry.name);
    const auto surf = surface::build_surface(molecule);
    const auto naive_born = core::naive_born_radii(molecule, surf);
    const double naive_e = core::naive_epol(molecule, naive_born);
    core::GBEngine engine(molecule, surf);
    const double e = engine.compute().epol;
    EXPECT_LT(std::abs(e - naive_e) / std::abs(naive_e), 0.01)
        << entry.name;
  }
}

TEST(Integration, EmptyAndDegenerateInputsFailLoudly) {
  mol::Molecule empty;
  surface::Surface no_surface;
  EXPECT_THROW(core::GBEngine(empty, pipeline().surf, {}),
               util::CheckError);
  EXPECT_THROW(core::GBEngine(pipeline().molecule, no_surface, {}),
               util::CheckError);
}

TEST(Integration, SingleAtomMoleculeFullPipeline) {
  mol::Molecule one("ion");
  one.add_atom({{0, 0, 0}, 2.0, -1.0, mol::Element::O});
  const auto surf = surface::build_surface(one, {.subdivision = 2});
  core::GBEngine engine(one, surf);
  const auto r = engine.compute();
  // Born equation: E = −τ/2 · q²/R.
  const core::GBParams gb;
  EXPECT_NEAR(r.born[0], 2.0, 1e-6);
  EXPECT_NEAR(r.epol, -0.5 * gb.tau() / 2.0, 1e-6);
}
