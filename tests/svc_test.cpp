// Multi-tenant scoring service tests (octgb/svc/): digest keying,
// artifact-cache LRU + build coalescing, disjoint core placement,
// start-time fair queuing, and the end-to-end ScoringService — including
// the §2.8 invariant that a cache-hit evaluation is bit-identical to the
// cache-miss evaluation of the same digest.
//
// Suite names all start with "Svc" so the thread-sanitizer CI leg's name
// regex picks them up; SvcConcurrency.* are the tests that matter there.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/svc/admission.hpp"
#include "octgb/svc/cache.hpp"
#include "octgb/svc/digest.hpp"
#include "octgb/svc/placement.hpp"
#include "octgb/svc/service.hpp"
#include "octgb/trace/metrics.hpp"

using namespace octgb;
using svc::Digest;

namespace {

mol::Molecule small_protein(std::uint64_t seed, std::size_t atoms = 220) {
  return mol::generate_protein({.target_atoms = atoms, .seed = seed});
}

svc::JobRequest make_request(std::uint64_t seed, std::size_t atoms = 220) {
  svc::JobRequest req;
  req.molecule = small_protein(seed, atoms);
  req.surface.subdivision = 1;
  return req;
}

}  // namespace

// ---------------------------------------------------------------------------
// Digest keying
// ---------------------------------------------------------------------------

TEST(SvcDigest, DeterministicAcrossCalls) {
  const auto mol = small_protein(7);
  surface::SurfaceParams sp;
  core::EngineConfig cfg;
  const Digest a = svc::digest_job_inputs(mol, sp, cfg);
  const Digest b = svc::digest_job_inputs(mol, sp, cfg);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);
}

// Every knob that shapes trees, partition, or arithmetic must move the
// digest; the full variant set must be pairwise collision-free.
TEST(SvcDigest, CollisionFreeAcrossParameterAxes) {
  const auto mol = small_protein(7);
  surface::SurfaceParams sp;
  core::EngineConfig cfg;

  std::vector<Digest> digests;
  digests.push_back(svc::digest_job_inputs(mol, sp, cfg));

  {  // molecule content: a different molecule entirely
    digests.push_back(svc::digest_job_inputs(small_protein(8), sp, cfg));
  }
  {  // molecule content: one coordinate nudged by 1 ulp-scale amount
    auto m2 = mol;
    m2.atoms()[0].pos.x += 1e-9;
    digests.push_back(svc::digest_job_inputs(m2, sp, cfg));
  }
  {  // surface sampling
    auto s2 = sp;
    s2.subdivision += 1;
    digests.push_back(svc::digest_job_inputs(mol, s2, cfg));
    auto s3 = sp;
    s3.quad_degree += 1;
    digests.push_back(svc::digest_job_inputs(mol, s3, cfg));
    auto s4 = sp;
    s4.burial_scale *= 1.25;
    digests.push_back(svc::digest_job_inputs(mol, s4, cfg));
  }
  {  // tree topology
    auto c2 = cfg;
    c2.atoms_tree_params.max_leaf_size = 16;
    digests.push_back(svc::digest_job_inputs(mol, sp, c2));
    auto c3 = cfg;
    c3.qpoints_tree_params.max_leaf_size = 16;
    digests.push_back(svc::digest_job_inputs(mol, sp, c3));
  }
  {  // Morton build pipeline: grid resolution, strategy, and sort path all
     // change node partitions (or are pinned defensively) — each must move
     // the digest on either tree's params independently.
    auto c2 = cfg;
    c2.atoms_tree_params.grid_bits = 12;
    digests.push_back(svc::digest_job_inputs(mol, sp, c2));
    auto c3 = cfg;
    c3.qpoints_tree_params.grid_bits = 12;
    digests.push_back(svc::digest_job_inputs(mol, sp, c3));
    auto c4 = cfg;
    c4.atoms_tree_params.strategy = octree::BuildStrategy::Legacy;
    digests.push_back(svc::digest_job_inputs(mol, sp, c4));
    auto c5 = cfg;
    c5.qpoints_tree_params.strategy = octree::BuildStrategy::Legacy;
    digests.push_back(svc::digest_job_inputs(mol, sp, c5));
    auto c6 = cfg;
    c6.atoms_tree_params.parallel = false;
    digests.push_back(svc::digest_job_inputs(mol, sp, c6));
  }
  {  // partition ε and criterion
    auto c2 = cfg;
    c2.approx.eps_born = 0.5;
    digests.push_back(svc::digest_job_inputs(mol, sp, c2));
    auto c3 = cfg;
    c3.approx.strict_born_criterion = true;
    digests.push_back(svc::digest_job_inputs(mol, sp, c3));
  }
  {  // arithmetic: kernel / fastmath / vector ISA / precision
    auto c2 = cfg;
    c2.approx.kernel = core::KernelKind::Scalar;
    digests.push_back(svc::digest_job_inputs(mol, sp, c2));
    auto c3 = cfg;
    c3.approx.approx_math = true;
    digests.push_back(svc::digest_job_inputs(mol, sp, c3));
    auto c4 = cfg;
    c4.approx.vector.isa = simd::VectorIsa::V128;
    digests.push_back(svc::digest_job_inputs(mol, sp, c4));
    auto c5 = cfg;
    c5.approx.vector.precision = simd::Precision::Mixed;
    digests.push_back(svc::digest_job_inputs(mol, sp, c5));
  }

  std::set<Digest> unique(digests.begin(), digests.end());
  EXPECT_EQ(unique.size(), digests.size())
      << "two distinct parameterizations collided";
}

// eps_epol and GBParams are warm re-dials on a shared artifact — they must
// NOT key the cache, or ε-sweeps would rebuild trees per point.
TEST(SvcDigest, WarmRedialKnobsDoNotChangeTheKey) {
  const auto mol = small_protein(7);
  surface::SurfaceParams sp;
  core::EngineConfig cfg;
  const Digest base = svc::digest_job_inputs(mol, sp, cfg);

  auto c2 = cfg;
  c2.approx.eps_epol = 0.05;
  EXPECT_EQ(svc::digest_job_inputs(mol, sp, c2), base);

  auto c3 = cfg;
  c3.gb.eps_solv = 40.0;
  EXPECT_EQ(svc::digest_job_inputs(mol, sp, c3), base);
}

// ---------------------------------------------------------------------------
// Artifact cache
// ---------------------------------------------------------------------------

namespace {

/// Tiny real artifact for cache tests (build cost matters in the
/// concurrency tests, so keep it small).
svc::ArtifactBuilder session_builder(const mol::Molecule& mol) {
  return [mol]() {
    auto surf = surface::build_surface(mol, {.subdivision = 0});
    return std::make_unique<core::ScoringSession>(
        mol, surf, core::EngineConfig{},
        surface::SurfaceParams{.subdivision = 0});
  };
}

}  // namespace

TEST(SvcCache, HitSkipsTheBuilder) {
  svc::ArtifactCache cache(std::size_t{1} << 30);
  const auto mol = small_protein(3, 120);
  const Digest d = svc::digest_molecule(mol);

  int builds = 0;
  auto counting = [&]() {
    ++builds;
    return session_builder(mol)();
  };

  bool hit = true;
  auto a = cache.acquire(d, counting, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(builds, 1);
  ASSERT_NE(a, nullptr);
  EXPECT_GT(a->bytes, 0u);

  auto b = cache.acquire(d, counting, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(builds, 1) << "hit must not rebuild";
  EXPECT_EQ(a.get(), b.get()) << "hit must share the same artifact";

  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, a->bytes);
}

TEST(SvcCache, LruEvictsUnderByteBudget) {
  // Budget sized for ~2 small artifacts: inserting a third evicts the
  // least recently used.
  const auto m1 = small_protein(11, 120);
  const auto m2 = small_protein(12, 120);
  const auto m3 = small_protein(13, 120);
  const Digest d1 = svc::digest_molecule(m1);
  const Digest d2 = svc::digest_molecule(m2);
  const Digest d3 = svc::digest_molecule(m3);

  // Measure one artifact to size the budget.
  std::size_t one = 0;
  {
    svc::ArtifactCache probe(std::size_t{1} << 30);
    one = probe.acquire(d1, session_builder(m1))->bytes;
  }
  ASSERT_GT(one, 0u);

  svc::ArtifactCache cache(2 * one + one / 2);
  cache.acquire(d1, session_builder(m1));
  cache.acquire(d2, session_builder(m2));
  EXPECT_TRUE(cache.contains(d1));
  EXPECT_TRUE(cache.contains(d2));

  // Touch d1 so d2 becomes the LRU victim.
  cache.acquire(d1, session_builder(m1));
  cache.acquire(d3, session_builder(m3));

  EXPECT_TRUE(cache.contains(d3));
  EXPECT_TRUE(cache.contains(d1)) << "recently used entry must survive";
  EXPECT_FALSE(cache.contains(d2)) << "LRU entry must be evicted";
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, cache.budget_bytes());
}

TEST(SvcCache, MruSurvivesEvenAZeroBudget) {
  const auto mol = small_protein(5, 120);
  const Digest d = svc::digest_molecule(mol);
  svc::ArtifactCache cache(0);
  cache.acquire(d, session_builder(mol));
  EXPECT_TRUE(cache.contains(d))
      << "budget is a high-water target; the MRU entry is exempt";
  bool hit = false;
  cache.acquire(d, session_builder(mol), &hit);
  EXPECT_TRUE(hit);
}

TEST(SvcCache, InFlightHandleSurvivesEviction) {
  const auto m1 = small_protein(21, 120);
  const auto m2 = small_protein(22, 120);
  svc::ArtifactCache cache(0);  // single-entry: every insert evicts the rest
  auto held = cache.acquire(svc::digest_molecule(m1), session_builder(m1));
  cache.acquire(svc::digest_molecule(m2), session_builder(m2));
  EXPECT_FALSE(cache.contains(svc::digest_molecule(m1)));
  // The evicted artifact stays alive and usable through the shared handle.
  ASSERT_NE(held->session, nullptr);
  EXPECT_GT(held->session->molecule().size(), 0u);
}

TEST(SvcCache, FailedBuildPropagatesAndRetries) {
  svc::ArtifactCache cache(std::size_t{1} << 30);
  const auto mol = small_protein(6, 120);
  const Digest d = svc::digest_molecule(mol);
  EXPECT_THROW(
      cache.acquire(d, []() -> std::unique_ptr<core::ScoringSession> {
        throw std::runtime_error("injected build failure");
      }),
      std::runtime_error);
  // The failure is not cached: a later acquire rebuilds successfully.
  bool hit = true;
  auto a = cache.acquire(d, session_builder(mol), &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(cache.contains(d));
}

// ---------------------------------------------------------------------------
// Core placement
// ---------------------------------------------------------------------------

TEST(SvcPlacement, LeasesAreDisjointAndContiguous) {
  svc::CoreAllocator alloc(8);
  auto a = alloc.try_alloc(3);
  auto b = alloc.try_alloc(3);
  auto c = alloc.try_alloc(2);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(alloc.in_use(), 8);
  // Disjointness: no core belongs to two leases.
  std::vector<int> owner(8, -1);
  int id = 0;
  for (const auto& l : {*a, *b, *c}) {
    for (int core = l.first; core < l.first + l.count; ++core) {
      ASSERT_GE(core, 0);
      ASSERT_LT(core, 8);
      EXPECT_EQ(owner[core], -1) << "core " << core << " double-allocated";
      owner[core] = id;
    }
    ++id;
  }
  // Full machine: the next request must fail, and succeed after a release.
  EXPECT_FALSE(alloc.try_alloc(1).has_value());
  alloc.release(*b);
  EXPECT_EQ(alloc.in_use(), 5);
  auto d = alloc.try_alloc(3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->first, b->first) << "first-fit reuses the freed range";
}

TEST(SvcPlacement, AllocBlocksUntilCapacityFrees) {
  svc::CoreAllocator alloc(4);
  auto hold = alloc.alloc(4);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    svc::CoreLease l = alloc.alloc(2);  // must wait for the release below
    got.store(true);
    alloc.release(l);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load()) << "alloc must block while the machine is full";
  alloc.release(hold);
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(alloc.waits(), 1u);
  EXPECT_EQ(alloc.in_use(), 0);
}

TEST(SvcPlacement, ProportionalSplitMatchesSetDiscipline) {
  // SET-style: cores proportional to work, every nonzero child ≥ 1, exact
  // total.
  const std::uint64_t ops[] = {600, 300, 100};
  auto split = svc::CoreAllocator::proportional_split(ops, 10);
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0] + split[1] + split[2], 10);
  EXPECT_EQ(split[0], 6);
  EXPECT_EQ(split[1], 3);
  EXPECT_EQ(split[2], 1);

  // A tiny child still gets one core when cores >= children.
  const std::uint64_t skew[] = {10'000, 1, 1};
  auto s2 = svc::CoreAllocator::proportional_split(skew, 4);
  EXPECT_EQ(s2[0] + s2[1] + s2[2], 4);
  EXPECT_GE(s2[1], 1);
  EXPECT_GE(s2[2], 1);
}

// ---------------------------------------------------------------------------
// Fair queues and admission
// ---------------------------------------------------------------------------

TEST(SvcAdmission, BoundsRejectWithReason) {
  svc::AdmissionConfig adm;
  adm.max_total_queued = 4;
  adm.default_tenant.max_queued = 2;
  svc::FairQueues q;

  EXPECT_EQ(q.push("a", 1, adm), svc::RejectReason::None);
  EXPECT_EQ(q.push("a", 2, adm), svc::RejectReason::None);
  EXPECT_EQ(q.push("a", 3, adm), svc::RejectReason::TenantQueueFull);
  EXPECT_EQ(q.push("b", 4, adm), svc::RejectReason::None);
  EXPECT_EQ(q.push("c", 5, adm), svc::RejectReason::None);
  EXPECT_EQ(q.push("d", 6, adm), svc::RejectReason::QueueFull);
  EXPECT_EQ(q.total_queued(), 4u);
  EXPECT_EQ(q.queued("a"), 2u);
}

// The starvation bound: a tenant arriving behind a flood is served after
// at most a couple of the flooder's jobs, not after the whole backlog.
TEST(SvcFairShare, LateTenantIsNotStarvedByAFlood) {
  svc::AdmissionConfig adm;
  adm.max_total_queued = 256;
  adm.default_tenant.max_queued = 128;
  svc::FairQueues q;

  for (std::uint64_t i = 0; i < 64; ++i)
    ASSERT_EQ(q.push("flood", i, adm), svc::RejectReason::None);

  // Serve two flood jobs (unit cost each), then the late tenant arrives.
  std::uint64_t id;
  std::string tenant;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(q.pop(&id, &tenant));
    q.charge(tenant, 1.0);
  }
  ASSERT_EQ(q.push("late", 1000, adm), svc::RejectReason::None);

  int pops_until_late = 0;
  while (q.pop(&id, &tenant)) {
    ++pops_until_late;
    q.charge(tenant, 1.0);
    if (tenant == "late") break;
  }
  EXPECT_LE(pops_until_late, 2)
      << "late tenant waited behind " << pops_until_late - 1
      << " flood jobs; fair queuing bounds this to the inflight window";
}

TEST(SvcFairShare, ServiceProportionalToWeight) {
  svc::AdmissionConfig adm;
  adm.max_total_queued = 1024;
  adm.default_tenant.max_queued = 512;
  svc::FairQueues q;
  q.configure("heavy", {.weight = 3.0, .max_queued = 512});
  q.configure("light", {.weight = 1.0, .max_queued = 512});
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(q.push("heavy", i, adm), svc::RejectReason::None);
    ASSERT_EQ(q.push("light", 1000 + i, adm), svc::RejectReason::None);
  }
  int heavy_served = 0, light_served = 0;
  std::uint64_t id;
  std::string tenant;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop(&id, &tenant));
    q.charge(tenant, 1.0);  // unit cost per job
    (tenant == "heavy" ? heavy_served : light_served)++;
  }
  // Expect ~3:1 (75 vs 25) with slack for startup transients.
  EXPECT_GE(heavy_served, 65);
  EXPECT_LE(light_served, 35);
  EXPECT_GE(light_served, 15) << "light tenant must still make progress";
}

// ---------------------------------------------------------------------------
// ServiceCounters arithmetic (perf schema contract)
// ---------------------------------------------------------------------------

TEST(SvcCounters, SumCoversEveryField) {
  perf::ServiceCounters a, b;
  // Stamp every field with a distinct value via the byte view the
  // static_assert in counters.hpp guarantees is exhaustive.
  auto* pa = reinterpret_cast<std::uint64_t*>(&a);
  auto* pb = reinterpret_cast<std::uint64_t*>(&b);
  for (std::size_t i = 0; i < perf::ServiceCounters::kFieldCount; ++i) {
    pa[i] = i + 1;
    pb[i] = 10 * (i + 1);
  }
  a += b;
  for (std::size_t i = 0; i < perf::ServiceCounters::kFieldCount; ++i)
    EXPECT_EQ(pa[i], 11 * (i + 1)) << "field " << i << " not summed";
  EXPECT_EQ(a.rejected_total(), a.rejected_tenant_queue_full +
                                    a.rejected_queue_full +
                                    a.rejected_too_large +
                                    a.rejected_shutting_down);
}

TEST(SvcCounters, MetricsExportMatchesSchema) {
  perf::ServiceCounters c;
  c.submitted = 5;
  c.completed = 4;
  c.rejected_queue_full = 1;
  c.cache_hits = 3;
  trace::MetricsRegistry m;
  m.add_svc("", c);
  EXPECT_EQ(m.get_int("svc.submitted"), 5u);
  EXPECT_EQ(m.get_int("svc.completed"), 4u);
  EXPECT_EQ(m.get_int("svc.rejected.queue_full"), 1u);
  EXPECT_EQ(m.get_int("svc.cache.hits"), 3u);
}

// ---------------------------------------------------------------------------
// End-to-end service
// ---------------------------------------------------------------------------

namespace {

svc::ServiceConfig small_service_config() {
  svc::ServiceConfig cfg;
  cfg.cores = 4;
  cfg.executors = 2;
  cfg.max_job_cores = 2;
  cfg.atoms_per_core = 200;
  return cfg;
}

}  // namespace

TEST(SvcService, WarmSubmissionSkipsPreprocessingAndIsBitIdentical) {
  svc::ScoringService service(small_service_config());

  auto cold = service.submit(make_request(31));
  ASSERT_TRUE(cold.accepted());
  const svc::JobResult cold_r = cold.result();
  EXPECT_FALSE(cold_r.cache_hit);

  auto warm = service.submit(make_request(31));
  ASSERT_TRUE(warm.accepted());
  const svc::JobResult warm_r = warm.result();
  EXPECT_TRUE(warm_r.cache_hit);
  EXPECT_EQ(warm_r.digest, cold_r.digest);

  // §2.8: bit-identical, not approximately equal.
  EXPECT_EQ(warm_r.epol, cold_r.epol);

  const auto c = service.counters();
  EXPECT_EQ(c.preprocessed, 1u) << "warm submission must not preprocess";
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.cache_misses, 1u);
  EXPECT_EQ(c.completed, 2u);
}

// The cache-hit path must also be bit-identical to a *standalone* session
// evaluated at the service's width — the cache changes where the warm
// state lives, never what it computes.
TEST(SvcService, CacheHitMatchesStandaloneSessionBits) {
  auto req = make_request(37);
  const auto cfg = small_service_config();

  double standalone = 0.0;
  {
    auto surf = surface::build_surface(req.molecule, req.surface);
    core::ScoringSession session(req.molecule, surf, req.config, req.surface);
    svc::ScoringService probe(cfg);  // width_for only; no jobs run
    ws::Scheduler sched(probe.width_for(req.molecule.size()));
    standalone = session.evaluate_at(req.config.approx, &sched).epol;
  }

  svc::ScoringService service(cfg);
  auto a = service.submit(make_request(37));
  auto b = service.submit(make_request(37));
  EXPECT_EQ(a.result().epol, standalone);
  EXPECT_EQ(b.result().epol, standalone);
}

TEST(SvcService, EpsilonRedialSharesOneArtifact) {
  svc::ScoringService service(small_service_config());
  std::vector<svc::JobTicket> tickets;
  for (double eps : {0.9, 0.5, 0.2}) {
    auto req = make_request(41);
    req.config.approx.eps_epol = eps;
    tickets.push_back(service.submit(std::move(req)));
  }
  for (auto& t : tickets) t.wait();
  const auto c = service.counters();
  EXPECT_EQ(c.preprocessed, 1u)
      << "eps_epol re-dials must share one warm artifact";
  EXPECT_EQ(c.completed, 3u);
  // Tighter ε must not *increase* the energy error — sanity, not bits.
  EXPECT_NE(tickets[0].result().epol, 0.0);
}

TEST(SvcService, PoseScreenHitMatchesMissBits) {
  auto base = make_request(43, 300);
  base.kind = svc::JobKind::PoseScreen;
  base.ligand_begin = base.molecule.size() / 2;
  for (int i = 0; i < 4; ++i) {
    base.poses.push_back(geom::RigidTransform::translate(
        geom::Vec3(0.5 * (i + 1), 0.25 * i, 0.0)));
  }

  svc::ScoringService service(small_service_config());
  auto cold = service.submit(base);
  const auto& cold_scores = cold.result().pose_scores;
  auto warm = service.submit(base);
  const auto& warm_scores = warm.result().pose_scores;

  EXPECT_TRUE(warm.result().cache_hit);
  ASSERT_EQ(cold_scores.size(), warm_scores.size());
  for (std::size_t i = 0; i < cold_scores.size(); ++i) {
    EXPECT_EQ(cold_scores[i].epol, warm_scores[i].epol) << "pose " << i;
    EXPECT_EQ(cold_scores[i].delta, warm_scores[i].delta) << "pose " << i;
  }
  EXPECT_EQ(service.counters().poses_scored, 8u);
}

TEST(SvcService, RejectsSurfaceAsTicketsNotExceptions) {
  auto cfg = small_service_config();
  cfg.admission.max_atoms = 50;  // everything below is too large
  svc::ScoringService service(cfg);
  auto t = service.submit(make_request(47));
  EXPECT_FALSE(t.accepted());
  EXPECT_EQ(t.reject(), svc::RejectReason::TooLarge);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(service.counters().rejected_too_large, 1u);
  EXPECT_EQ(service.counters().rejected_total(), 1u);
}

TEST(SvcService, StopRejectsNewWorkAndDrains) {
  svc::ScoringService service(small_service_config());
  auto t = service.submit(make_request(53));
  service.stop();
  EXPECT_TRUE(t.done()) << "stop() drains admitted jobs before returning";
  auto late = service.submit(make_request(53));
  EXPECT_FALSE(late.accepted());
  EXPECT_EQ(late.reject(), svc::RejectReason::ShuttingDown);
}

TEST(SvcService, PinnedJobsReportZeroOffblockSteals) {
  // With pin_cores on (the default), every job's scheduler workers sit on
  // the job's leased core block, and no steal may cross a block boundary:
  // ws.steal.offblock must stay exactly 0 for the service lifetime
  // (DESIGN.md §2.11). Width-2 jobs force real multi-worker scheduling.
  svc::ScoringService service(small_service_config());
  ASSERT_TRUE(service.config().pin_cores);
  std::vector<svc::JobTicket> tickets;
  for (std::uint64_t seed : {71u, 72u, 73u, 74u})
    tickets.push_back(service.submit(make_request(seed, 400)));
  for (auto& t : tickets) {
    ASSERT_TRUE(t.accepted());
    EXPECT_EQ(t.result().cores, 2);
  }
  const auto st = service.steal_tiers();
  EXPECT_EQ(st.offblock, 0u);
  // Pinning is best-effort; on hosts where affinity calls succeed the
  // stats also surface how many workers actually landed on their core.
  trace::MetricsRegistry m;
  service.export_metrics(m);
  EXPECT_TRUE(m.contains("ws.steal.offblock"));
  EXPECT_EQ(m.get_int("ws.steal.offblock"), 0u);
  EXPECT_TRUE(m.contains("ws.pinned_workers"));
}

TEST(SvcService, UnpinnedServiceStillExportsStealTiers) {
  svc::ServiceConfig cfg = small_service_config();
  cfg.pin_cores = false;
  svc::ScoringService service(cfg);
  auto t = service.submit(make_request(75, 400));
  ASSERT_TRUE(t.accepted());
  t.wait();
  const auto st = service.steal_tiers();
  EXPECT_EQ(st.pinned_workers, 0u) << "pin_cores off must not pin";
  trace::MetricsRegistry m;
  service.export_metrics(m);
  EXPECT_EQ(m.get_int("ws.pinned_workers"), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan targets)
// ---------------------------------------------------------------------------

TEST(SvcConcurrency, CoalescedMissesBuildOnce) {
  svc::ArtifactCache cache(std::size_t{1} << 30);
  const auto mol = small_protein(61, 150);
  const Digest d = svc::digest_molecule(mol);
  std::atomic<int> builds{0};
  std::atomic<int> arrived{0};
  auto builder = [&]() {
    ++builds;
    // Hold the build open until every thread has reached acquire(), so
    // the misses genuinely overlap even when a loaded host delays some
    // thread spawns past the build (bounded escape: 2 s).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (arrived.load() < 8 && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return session_builder(mol)();
  };
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      ++arrived;
      auto a = cache.acquire(d, builder);
      if (a && a->session) ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1) << "concurrent misses must coalesce";
  EXPECT_EQ(ok.load(), 8);
  EXPECT_GE(cache.stats().coalesced, 1u);
}

TEST(SvcConcurrency, ConcurrentSubmitAndEvictStaysConsistent) {
  auto cfg = small_service_config();
  // A tiny budget forces continuous eviction under the submissions.
  cfg.cache_budget_bytes = 1;
  svc::ScoringService service(cfg);

  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 6;
  std::atomic<int> completed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int j = 0; j < kJobsEach; ++j) {
        // Two hot molecules per submitter + a stream of cold ones, from
        // four tenants.
        const std::uint64_t seed = (j % 3 == 0) ? 100 + s : 200 + s * 10 + j;
        auto req = make_request(seed, 150);
        req.tenant = "tenant-" + std::to_string(s);
        auto t = service.submit(std::move(req));
        if (t.accepted()) {
          t.wait();
          ++completed;
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  service.drain();

  const auto c = service.counters();
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(completed.load()));
  EXPECT_EQ(c.submitted, c.completed + c.rejected_total());
  EXPECT_GE(c.cache_evictions, 1u) << "the 1-byte budget must evict";
  // Every tenant made progress (fair share under concurrency).
  for (int s = 0; s < kSubmitters; ++s)
    EXPECT_GT(service.completed_for("tenant-" + std::to_string(s)), 0u);
  EXPECT_EQ(service.allocator().in_use(), 0) << "every lease returned";
}

TEST(SvcConcurrency, HotMoleculeUnderContentionKeepsBitIdentity) {
  svc::ScoringService service(small_service_config());
  constexpr int kThreads = 4;
  std::vector<double> epols(kThreads * 2, 0.0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < 2; ++j) {
        auto t = service.submit(make_request(71, 150));
        epols[static_cast<std::size_t>(i * 2 + j)] = t.result().epol;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 1; i < epols.size(); ++i)
    EXPECT_EQ(epols[i], epols[0]) << "submission " << i;
  EXPECT_EQ(service.counters().preprocessed, 1u);
}
