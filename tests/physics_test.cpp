// Tests for the force module and the Poisson–Boltzmann reference solver.

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/baselines/pb.hpp"
#include "octgb/core/forces.hpp"
#include "octgb/octree/nblist.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;
using geom::Vec3;

// ---- GB forces -------------------------------------------------------------

TEST(Forces, KernelMatchesNumericalDerivativeOfInverseFgb) {
  // g(r², D) must equal −d(1/f_GB)/d(r²) · 2 … i.e. the pair force law.
  // Check via central differences on E(r) = 1/f_GB(r²).
  const double D = 3.7;
  for (double r : {1.0, 2.5, 5.0, 12.0}) {
    const double h = 1e-5;
    const double em = 1.0 / core::f_gb((r - h) * (r - h), D);
    const double ep = 1.0 / core::f_gb((r + h) * (r + h), D);
    const double dEdr = (ep - em) / (2 * h);
    // ∇(1/f) along r is −g·r (from the closed form).
    EXPECT_NEAR(dEdr, -core::epol_force_kernel(r * r, D) * r,
                1e-6 * std::abs(dEdr) + 1e-12)
        << "r=" << r;
  }
}

TEST(Forces, MatchFiniteDifferenceOfNaiveEnergy) {
  // The gold standard: F = −∇E by central differences with frozen radii.
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 1.7, 0.8, mol::Element::C});
  m.add_atom({{3, 1, 0}, 1.5, -0.5, mol::Element::O});
  m.add_atom({{-1, 2, 2}, 1.6, 0.3, mol::Element::N});
  const std::vector<double> born = {2.0, 1.8, 2.2};

  const auto forces = core::naive_epol_forces(m, born);
  const double h = 1e-6;
  for (std::size_t a = 0; a < m.size(); ++a) {
    for (int axis = 0; axis < 3; ++axis) {
      auto perturbed = [&](double delta) {
        mol::Molecule p = m;
        Vec3 pos = p.atom(a).pos;
        (axis == 0 ? pos.x : axis == 1 ? pos.y : pos.z) += delta;
        p.atoms()[a].pos = pos;
        return core::naive_epol(p, born);
      };
      const double grad = (perturbed(h) - perturbed(-h)) / (2 * h);
      const double force_component = forces[a][axis];
      EXPECT_NEAR(force_component, -grad,
                  1e-5 * (std::abs(grad) + 1.0))
          << "atom " << a << " axis " << axis;
    }
  }
}

TEST(Forces, NewtonsThirdLawAndTranslationInvariance) {
  const auto m = mol::generate_protein({.target_atoms = 150, .seed = 81});
  const auto surf = surface::build_surface(m);
  const auto born = core::naive_born_radii(m, surf);
  const auto forces = core::naive_epol_forces(m, born);
  Vec3 total;
  for (const auto& f : forces) total += f;
  EXPECT_NEAR(total.norm(), 0.0, 1e-8);  // momentum conservation
}

TEST(Forces, OctreeForcesMatchNaive) {
  const auto m = mol::generate_protein({.target_atoms = 600, .seed = 82});
  const auto surf = surface::build_surface(m);
  core::GBEngine engine(m, surf);
  const auto result = engine.compute();
  const auto naive = core::naive_epol_forces(m, result.born);
  perf::WorkCounters wc;
  const auto octree_f = core::approx_epol_forces(engine, result.born, wc);
  ASSERT_EQ(octree_f.size(), naive.size());
  double fscale = 0.0;
  for (const auto& f : naive) fscale = std::max(fscale, f.norm());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR((octree_f[i] - naive[i]).norm(), 0.0, 0.03 * fscale)
        << "atom " << i;
  }
}

TEST(Forces, DescentStepLowersEnergy) {
  // Take a small steepest-descent step along the forces; the (frozen
  // radii) energy must decrease — the md_minimize example's invariant.
  const auto m = mol::generate_protein({.target_atoms = 200, .seed = 83});
  const auto surf = surface::build_surface(m);
  const auto born = core::naive_born_radii(m, surf);
  const double e0 = core::naive_epol(m, born);
  const auto forces = core::naive_epol_forces(m, born);
  double fmax = 0.0;
  for (const auto& f : forces) fmax = std::max(fmax, f.norm());
  ASSERT_GT(fmax, 0.0);
  mol::Molecule moved = m;
  const double step = 1e-4 / fmax;
  for (std::size_t i = 0; i < moved.size(); ++i)
    moved.atoms()[i].pos += forces[i] * step;
  const double e1 = core::naive_epol(moved, born);
  EXPECT_LT(e1, e0);
}

// ---- Poisson–Boltzmann -------------------------------------------------------

TEST(PoissonBoltzmann, BornIonMatchesClosedForm) {
  // The canonical PB validation: a single ion of radius R has
  // Epol = −(τ/2) q²/R exactly.
  mol::Molecule m("ion");
  m.add_atom({{0, 0, 0}, 2.0, 1.0, mol::Element::O});
  baselines::PbParams params;
  params.grid_spacing = 0.5;
  params.padding = 12.0;
  params.max_iterations = 4000;
  params.tolerance = 1e-8;
  const auto r = baselines::pb_polarization_energy(m, {}, params);
  EXPECT_TRUE(r.converged);
  const core::GBParams gb;
  const double exact = -0.5 * gb.tau() / 2.0;
  EXPECT_NEAR(r.epol, exact, 0.10 * std::abs(exact));  // grid-limited
}

TEST(PoissonBoltzmann, RefinementImprovesBornIon) {
  mol::Molecule m("ion");
  m.add_atom({{0, 0, 0}, 2.0, 1.0, mol::Element::O});
  const core::GBParams gb;
  const double exact = -0.5 * gb.tau() / 2.0;
  double coarse_err = 0, fine_err = 0;
  for (double h : {1.0, 0.5}) {
    baselines::PbParams params;
    params.grid_spacing = h;
    params.padding = 10.0;
    params.max_iterations = 4000;
    params.tolerance = 1e-8;
    const auto r = baselines::pb_polarization_energy(m, {}, params);
    (h == 1.0 ? coarse_err : fine_err) =
        std::abs(r.epol - exact) / std::abs(exact);
  }
  EXPECT_LT(fine_err, coarse_err);
}

TEST(PoissonBoltzmann, AgreesWithGBOnSmallMolecule) {
  // GB approximates PB; on a small dipeptide-scale system they should
  // land within tens of percent (the model-level agreement §I relies on).
  const auto m = mol::generate_protein({.target_atoms = 60, .seed = 84});
  baselines::PbParams params;
  params.grid_spacing = 0.6;
  params.padding = 10.0;
  params.max_iterations = 3000;
  params.tolerance = 1e-7;
  const auto pb = baselines::pb_polarization_energy(m, {}, params);
  const auto surf = surface::build_surface(m, {.subdivision = 2});
  const auto born = core::naive_born_radii(m, surf);
  const double gb_e = core::naive_epol(m, born);
  EXPECT_LT(pb.epol, 0.0);
  EXPECT_LT(gb_e, 0.0);
  EXPECT_NEAR(pb.epol, gb_e, 0.5 * std::abs(gb_e));
}

TEST(PoissonBoltzmann, SaltScreeningDeepensPolarization) {
  // Adding mobile ions (κ > 0) screens the solvent further; |Epol| grows.
  mol::Molecule m("ion");
  m.add_atom({{0, 0, 0}, 2.0, 1.0, mol::Element::O});
  baselines::PbParams no_salt;
  no_salt.grid_spacing = 0.6;
  no_salt.max_iterations = 3000;
  baselines::PbParams salt = no_salt;
  salt.ionic_kappa = 0.3;
  const auto r0 = baselines::pb_polarization_energy(m, {}, no_salt);
  const auto r1 = baselines::pb_polarization_energy(m, {}, salt);
  EXPECT_LT(r1.epol, r0.epol);  // more negative
}

TEST(PoissonBoltzmann, GridBudgetThrowsSimulatedOom) {
  const auto m = mol::generate_protein({.target_atoms = 500, .seed = 85});
  baselines::PbParams params;
  params.grid_spacing = 0.8;
  params.max_bytes = 1024;
  EXPECT_THROW(baselines::pb_polarization_energy(m, {}, params),
               octree::NbListOutOfMemory);
}

TEST(PoissonBoltzmann, CountsGridWork) {
  mol::Molecule m("ion");
  m.add_atom({{0, 0, 0}, 2.0, 1.0, mol::Element::O});
  baselines::PbParams params;
  params.grid_spacing = 1.0;
  params.padding = 6.0;
  perf::WorkCounters wc;
  baselines::pb_polarization_energy(m, {}, params, &wc);
  EXPECT_GT(wc.grid_cells, 1000u);
}
