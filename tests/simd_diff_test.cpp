// Width × precision differential test matrix for the explicit vector
// layer (octgb/simd/, DESIGN.md §2.7). Every compiled-and-runnable width
// is driven over generator-built spans of every remainder shape
// (lengths 1 .. 4·maxlanes+3, several base-pointer offsets) and checked
// against the scalar reference kernels in core/batch_kernels:
//
//   · double kernels agree up to reassociation (ε-bounds) and are
//     bitwise-stable across repeated runs;
//   · spans shorter than one vector run the pure scalar tail, which is
//     bit-identical to the reference kernel (x86-64, where the core TU's
//     baseline has no FMA to contract — the SIMD TUs are compiled with
//     -ffp-contract=off to match);
//   · the splice property: vec(span) == vec(aligned prefix) followed by
//     per-element reference accumulation of the tail, bit for bit;
//   · mixed precision stays inside the float-rounding envelope of the
//     double kernel and never flips a near/far classification (the engine
//     work counters are width- and precision-invariant);
//   · the bin-pair far-field kernel reproduces the scalar skip-zeros loop
//     including its exact binpair count;
//   · denormal, huge, coincident, and zero-weight inputs stay finite
//     (this test runs under ASan/UBSan in the CI simd-matrix job);
//   · engine-level: every width agrees with the Scalar vector path, warm
//     plan replay stays bitwise, and a width/precision switch repopulates
//     the Born cache instead of serving stale radii.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "octgb/core/batch_kernels.hpp"
#include "octgb/core/engine.hpp"
#include "octgb/core/fastmath.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/geom/vec3.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/simd/dispatch.hpp"
#include "octgb/simd/types.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/util/rng.hpp"

using namespace octgb;
using core::AtomBatch;
using core::AtomBatchF;
using core::EvalScratch;
using core::GBEngine;
using core::QPointBatch;
using core::QPointBatchF;
using simd::KernelSet;
using simd::Precision;
using simd::VectorIsa;
using simd::VectorParams;

namespace {

/// Longest span shape the matrix covers: 4 full vectors of the widest
/// possible build (8 double lanes) plus a 3-element remainder.
constexpr std::size_t kMaxSpan = 4 * 8 + 3;
/// Base offsets into the backing arrays: exercise every distinct
/// (unaligned) load alignment an 8-lane vector can see.
constexpr std::size_t kOffsets[] = {0, 1, 3, 5};

const VectorIsa kWidths[] = {VectorIsa::V128, VectorIsa::V256,
                             VectorIsa::V512};

/// Deterministic random SoA planes backing every span in the matrix.
struct SpanData {
  std::vector<double> x, y, z, wnx, wny, wnz, charge, born;
  std::vector<float> xf, yf, zf, wnxf, wnyf, wnzf, chargef;

  explicit SpanData(std::uint64_t seed, std::size_t n = kMaxSpan + 8) {
    util::Xoshiro256 rng(seed);
    const auto fill = [&](std::vector<double>& v, double lo, double hi) {
      v.resize(n);
      for (auto& e : v) e = rng.uniform(lo, hi);
    };
    fill(x, -8.0, 8.0);
    fill(y, -8.0, 8.0);
    fill(z, -8.0, 8.0);
    fill(wnx, -0.5, 0.5);
    fill(wny, -0.5, 0.5);
    fill(wnz, -0.5, 0.5);
    fill(charge, -1.0, 1.0);
    fill(born, 1.0, 3.0);
    const auto narrow = [n](const std::vector<double>& src,
                            std::vector<float>& dst) {
      dst.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(src[i]);
    };
    narrow(x, xf);
    narrow(y, yf);
    narrow(z, zf);
    narrow(wnx, wnxf);
    narrow(wny, wnyf);
    narrow(wnz, wnzf);
    narrow(charge, chargef);
  }

  QPointBatch qspan(std::size_t off, std::size_t len) const {
    return {std::span(x).subspan(off, len), std::span(y).subspan(off, len),
            std::span(z).subspan(off, len),
            std::span(wnx).subspan(off, len),
            std::span(wny).subspan(off, len),
            std::span(wnz).subspan(off, len)};
  }
  QPointBatchF qspan_f(std::size_t off, std::size_t len) const {
    return {std::span(xf).subspan(off, len), std::span(yf).subspan(off, len),
            std::span(zf).subspan(off, len),
            std::span(wnxf).subspan(off, len),
            std::span(wnyf).subspan(off, len),
            std::span(wnzf).subspan(off, len)};
  }
  AtomBatch aspan(std::size_t off, std::size_t len) const {
    return {std::span(x).subspan(off, len), std::span(y).subspan(off, len),
            std::span(z).subspan(off, len),
            std::span(charge).subspan(off, len),
            std::span(born).subspan(off, len)};
  }
  AtomBatchF aspan_f(std::size_t off, std::size_t len) const {
    return {std::span(xf).subspan(off, len), std::span(yf).subspan(off, len),
            std::span(zf).subspan(off, len),
            std::span(chargef).subspan(off, len),
            std::span(born).subspan(off, len)};
  }
};

/// Σ|term| of the exact Born integral — the natural scale for mixed-mode
/// absolute error bounds (the signed sum can cancel to ~0).
double born_term_scale(double ax, double ay, double az,
                       const QPointBatch& q) {
  double s = 0.0;
  for (std::size_t k = 0; k < q.size(); ++k) {
    const double dx = q.x[k] - ax, dy = q.y[k] - ay, dz = q.z[k] - az;
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < 1e-12) continue;
    s += std::abs(q.wnx[k] * dx + q.wny[k] * dy + q.wnz[k] * dz) /
         (r2 * r2 * r2);
  }
  return s;
}

double epol_term_scale(double vx, double vy, double vz, double rv,
                       const AtomBatch& atoms) {
  double s = 0.0;
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    const double dx = atoms.x[k] - vx, dy = atoms.y[k] - vy,
                 dz = atoms.z[k] - vz;
    const double r2 = dx * dx + dy * dy + dz * dz;
    s += std::abs(atoms.charge[k]) /
         core::f_gb(r2, atoms.born[k] * rv);
  }
  return s;
}

/// Reference for the far-bins kernel: the scalar skip-zeros double loop
/// of EpolPass::far_field's node path (epol.cpp).
double far_bins_ref(const double* ub, int ulo, int uhi, const double* rep_u,
                    const double* vb, int vlo, int vhi, const double* rep_v,
                    double d2, bool fast, std::uint64_t& binpairs) {
  double sum = 0.0;
  for (int i = ulo; i <= uhi; ++i) {
    if (ub[i] == 0.0) continue;
    for (int j = vlo; j <= vhi; ++j) {
      if (vb[j] == 0.0) continue;
      const double rr = rep_u[i] * rep_v[j];
      if (fast) {
        const double f2 = d2 + rr * core::fast_exp(-d2 / (4.0 * rr));
        sum += ub[i] * vb[j] * core::fast_rsqrt(f2);
      } else {
        sum += ub[i] * vb[j] / core::f_gb(d2, rr);
      }
      ++binpairs;
    }
  }
  return sum;
}

struct Problem {
  mol::Molecule molecule;
  surface::Surface surf;
  explicit Problem(std::size_t atoms, std::uint64_t seed = 77)
      : molecule(mol::generate_protein({.target_atoms = atoms, .seed = seed})),
        surf(surface::build_surface(molecule, {.subdivision = 1})) {}
};

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max(1e-300, std::abs(b));
}

/// The available subset of kWidths; empty on exotic builds where only the
/// Scalar path exists (every matrix test degrades to a no-op then, which
/// is exactly the portable-fallback contract).
std::vector<VectorIsa> available_widths() {
  std::vector<VectorIsa> out;
  for (VectorIsa isa : kWidths)
    if (simd::isa_available(isa)) out.push_back(isa);
  return out;
}

}  // namespace

// ---- dispatch resolution --------------------------------------------------

TEST(SimdDispatch, ResolutionIsIdempotentAndConcrete) {
  // Auto resolves to a concrete available width (possibly Scalar), and
  // resolving an already-resolved request is a fixed point.
  const VectorIsa r = simd::resolve_isa(VectorIsa::Auto);
  EXPECT_NE(r, VectorIsa::Auto);
  EXPECT_TRUE(r == VectorIsa::Scalar || simd::isa_available(r));
  EXPECT_EQ(simd::resolve_isa(r), r);
  // An explicit unavailable width clamps down to something runnable.
  for (VectorIsa isa : kWidths) {
    const VectorIsa c = simd::resolve_isa(isa);
    EXPECT_TRUE(c == VectorIsa::Scalar || simd::isa_available(c));
    EXPECT_LE(static_cast<int>(c), static_cast<int>(isa));
  }
  // Scalar is always available and always resolves to itself.
  EXPECT_EQ(simd::resolve_isa(VectorIsa::Scalar), VectorIsa::Scalar);
  EXPECT_FALSE(simd::isa_available(VectorIsa::Auto));
  // resolve() passes precision through untouched.
  const VectorParams m =
      simd::resolve({VectorIsa::Auto, Precision::Mixed});
  EXPECT_EQ(m.precision, Precision::Mixed);
  EXPECT_EQ(m.isa, r);
}

TEST(SimdDispatch, ScalarHasNoTableAndWidthsAreConsistent) {
  EXPECT_EQ(simd::kernels(VectorIsa::Scalar), nullptr);
  EXPECT_EQ(simd::lanes(VectorIsa::Scalar), 0);
  const int want_lanes[] = {2, 4, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    if (!simd::isa_available(kWidths[i])) continue;
    const KernelSet* ks = simd::kernels(kWidths[i]);
    ASSERT_NE(ks, nullptr);
    EXPECT_EQ(ks->lanes, want_lanes[i]);
    EXPECT_EQ(ks->float_lanes, 2 * want_lanes[i]);
    EXPECT_EQ(simd::lanes(kWidths[i]), want_lanes[i]);
    EXPECT_STREQ(simd::isa_name(kWidths[i]), ks->name);
    // Every table entry must be populated.
    EXPECT_NE(ks->born_integral, nullptr);
    EXPECT_NE(ks->born_integral_fast, nullptr);
    EXPECT_NE(ks->born_integral_mixed, nullptr);
    EXPECT_NE(ks->epol_sum, nullptr);
    EXPECT_NE(ks->epol_sum_fast, nullptr);
    EXPECT_NE(ks->epol_sum_mixed, nullptr);
    EXPECT_NE(ks->epol_far_bins, nullptr);
    EXPECT_NE(ks->epol_far_bins_fast, nullptr);
  }
}

// ---- the width × precision × shape matrix ---------------------------------

TEST(SimdMatrix, BornKernelsMatchReferenceAcrossEveryShape) {
  const SpanData data(101);
  const double ax = 0.4, ay = -0.3, az = 0.2;
  for (VectorIsa isa : available_widths()) {
    const KernelSet* ks = simd::kernels(isa);
    ASSERT_NE(ks, nullptr);
    for (std::size_t off : kOffsets) {
      for (std::size_t len = 1; len <= kMaxSpan; ++len) {
        const QPointBatch q = data.qspan(off, len);
        const double ref = core::batch_born_integral(ax, ay, az, q);
        const double got = ks->born_integral(ax, ay, az, q);
        EXPECT_NEAR(got, ref, 1e-9 * (1.0 + std::abs(ref)))
            << ks->name << " off " << off << " len " << len;
        // Bitwise-stable: re-running the same span gives the same bits.
        EXPECT_EQ(got, ks->born_integral(ax, ay, az, q))
            << ks->name << " off " << off << " len " << len;

        const double ref_fast =
            core::batch_born_integral_fast(ax, ay, az, q);
        const double got_fast = ks->born_integral_fast(ax, ay, az, q);
        EXPECT_NEAR(got_fast, ref_fast, 1e-9 * (1.0 + std::abs(ref_fast)))
            << ks->name << " off " << off << " len " << len;
        EXPECT_EQ(got_fast, ks->born_integral_fast(ax, ay, az, q));

        const QPointBatchF qf = data.qspan_f(off, len);
        const double scale = born_term_scale(ax, ay, az, q);
        const double got_mixed = ks->born_integral_mixed(ax, ay, az, qf);
        EXPECT_NEAR(got_mixed, ref, 1e-5 * scale + 1e-12)
            << ks->name << " off " << off << " len " << len;
        EXPECT_EQ(got_mixed, ks->born_integral_mixed(ax, ay, az, qf));
      }
    }
  }
}

TEST(SimdMatrix, EpolKernelsMatchReferenceAcrossEveryShape) {
  const SpanData data(202);
  const double vx = 0.7, vy = 0.1, vz = -0.6, qv = 0.8, rv = 1.9;
  for (VectorIsa isa : available_widths()) {
    const KernelSet* ks = simd::kernels(isa);
    for (std::size_t off : kOffsets) {
      for (std::size_t len = 1; len <= kMaxSpan; ++len) {
        const AtomBatch a = data.aspan(off, len);
        const double ref = core::batch_epol_sum(vx, vy, vz, qv, rv, a);
        const double got = ks->epol_sum(vx, vy, vz, qv, rv, a);
        // The vector body's exp_pd differs from libm by ≈1 ulp per term,
        // so this is an ε-bound, not reassociation-only.
        EXPECT_NEAR(got, ref, 1e-9 * (1.0 + std::abs(ref)))
            << ks->name << " off " << off << " len " << len;
        EXPECT_EQ(got, ks->epol_sum(vx, vy, vz, qv, rv, a));

        const double ref_fast =
            core::batch_epol_sum_fast(vx, vy, vz, qv, rv, a);
        const double got_fast = ks->epol_sum_fast(vx, vy, vz, qv, rv, a);
        EXPECT_NEAR(got_fast, ref_fast,
                    1e-9 * (1.0 + std::abs(ref_fast)))
            << ks->name << " off " << off << " len " << len;
        EXPECT_EQ(got_fast, ks->epol_sum_fast(vx, vy, vz, qv, rv, a));

        const AtomBatchF af = data.aspan_f(off, len);
        const double scale =
            std::abs(qv) * epol_term_scale(vx, vy, vz, rv, a);
        const double got_mixed =
            ks->epol_sum_mixed(vx, vy, vz, qv, rv, af);
        // exp_ps carries a few-ulp float error on top of stream rounding.
        EXPECT_NEAR(got_mixed, ref, 1e-4 * scale + 1e-12)
            << ks->name << " off " << off << " len " << len;
        EXPECT_EQ(got_mixed, ks->epol_sum_mixed(vx, vy, vz, qv, rv, af));
      }
    }
  }
}

// ---- remainder-lane properties (satellite: bitwise tails) -----------------

// The tail claims below are exact only where the reference kernels compile
// without FMA contraction — guaranteed on x86-64, where the core library's
// baseline ISA has no FMA instruction (see DESIGN.md §2.7).
#if defined(__x86_64__) || defined(_M_X64)

TEST(SimdRemainder, SubVectorSpansAreBitwiseTheReferenceKernel) {
  const SpanData data(303);
  const double ax = -0.2, ay = 0.9, az = 0.5;
  const double vx = 0.3, vy = -0.8, vz = 0.1, qv = -0.6, rv = 2.2;
  for (VectorIsa isa : available_widths()) {
    const KernelSet* ks = simd::kernels(isa);
    const std::size_t lanes = static_cast<std::size_t>(ks->lanes);
    for (std::size_t off : kOffsets) {
      for (std::size_t len = 1; len < lanes; ++len) {
        const QPointBatch q = data.qspan(off, len);
        EXPECT_EQ(ks->born_integral(ax, ay, az, q),
                  core::batch_born_integral(ax, ay, az, q))
            << ks->name << " off " << off << " len " << len;
        EXPECT_EQ(ks->born_integral_fast(ax, ay, az, q),
                  core::batch_born_integral_fast(ax, ay, az, q))
            << ks->name << " off " << off << " len " << len;
        const AtomBatch a = data.aspan(off, len);
        EXPECT_EQ(ks->epol_sum(vx, vy, vz, qv, rv, a),
                  core::batch_epol_sum(vx, vy, vz, qv, rv, a))
            << ks->name << " off " << off << " len " << len;
        EXPECT_EQ(ks->epol_sum_fast(vx, vy, vz, qv, rv, a),
                  core::batch_epol_sum_fast(vx, vy, vz, qv, rv, a))
            << ks->name << " off " << off << " len " << len;
      }
    }
  }
}

TEST(SimdRemainder, SpliceVectorPrefixPlusScalarTailIsBitwise) {
  // vec(span) must equal vec(aligned prefix) followed by sequential
  // per-element reference accumulation of the tail — the reduction
  // completes before the tail runs, so the split is observable from
  // outside. Epol uses qv = 1 (qv scales the total, which would break
  // term-by-term splicing for qv ≠ 1).
  const SpanData data(404);
  const double ax = 0.1, ay = 0.2, az = -0.4;
  const double vx = -0.5, vy = 0.6, vz = 0.3, rv = 1.4;
  for (VectorIsa isa : available_widths()) {
    const KernelSet* ks = simd::kernels(isa);
    const std::size_t lanes = static_cast<std::size_t>(ks->lanes);
    for (std::size_t len = 1; len <= 4 * lanes + 3; ++len) {
      const std::size_t prefix = (len / lanes) * lanes;
      {
        double acc = ks->born_integral(ax, ay, az, data.qspan(0, prefix));
        for (std::size_t k = prefix; k < len; ++k)
          acc += core::batch_born_integral(ax, ay, az, data.qspan(k, 1));
        EXPECT_EQ(ks->born_integral(ax, ay, az, data.qspan(0, len)), acc)
            << ks->name << " len " << len;
      }
      {
        double acc =
            ks->epol_sum(vx, vy, vz, 1.0, rv, data.aspan(0, prefix));
        for (std::size_t k = prefix; k < len; ++k)
          acc += core::batch_epol_sum(vx, vy, vz, 1.0, rv,
                                      data.aspan(k, 1));
        EXPECT_EQ(ks->epol_sum(vx, vy, vz, 1.0, rv, data.aspan(0, len)),
                  acc)
            << ks->name << " len " << len;
      }
    }
  }
}

#endif  // x86-64

// ---- far-field bin-pair kernel --------------------------------------------

TEST(SimdFarBins, MatchesScalarLoopAndCountsExactly) {
  util::Xoshiro256 rng(505);
  for (VectorIsa isa : available_widths()) {
    const KernelSet* ks = simd::kernels(isa);
    for (int trial = 0; trial < 24; ++trial) {
      const int nbins = 1 + static_cast<int>(rng.uniform(0.0, 40.0));
      std::vector<double> ub(nbins, 0.0), vb(nbins, 0.0);
      std::vector<double> rep(nbins);
      for (int k = 0; k < nbins; ++k) {
        rep[k] = 1.0 * std::exp(0.05 * (k + 0.5));
        // ~40 % zero bins on each side, mirroring sparse charge tables.
        if (rng.uniform(0.0, 1.0) > 0.4) ub[k] = rng.uniform(-2.0, 2.0);
        if (rng.uniform(0.0, 1.0) > 0.4) vb[k] = rng.uniform(-2.0, 2.0);
      }
      const int ulo = trial % nbins, uhi = nbins - 1;
      const int vlo = 0, vhi = nbins - 1 - (trial % 3);
      const double d2 = rng.uniform(50.0, 5000.0);
      for (bool fast : {false, true}) {
        std::uint64_t pairs_ref = 0, pairs_got = 0;
        const double ref =
            far_bins_ref(ub.data(), ulo, uhi, rep.data(), vb.data(), vlo,
                         vhi, rep.data(), d2, fast, pairs_ref);
        const auto fn = fast ? ks->epol_far_bins_fast : ks->epol_far_bins;
        const double got = fn(ub.data(), ulo, uhi, rep.data(), vb.data(),
                              vlo, vhi, rep.data(), d2, pairs_got);
        EXPECT_NEAR(got, ref, 1e-10 * (1.0 + std::abs(ref)))
            << ks->name << " trial " << trial << " fast " << fast;
        // The work accounting must be width-invariant to the bit.
        EXPECT_EQ(pairs_got, pairs_ref)
            << ks->name << " trial " << trial << " fast " << fast;
        std::uint64_t again = 0;
        EXPECT_EQ(got, fn(ub.data(), ulo, uhi, rep.data(), vb.data(), vlo,
                          vhi, rep.data(), d2, again));
      }
    }
    // Empty ranges: no sum, no pairs.
    std::uint64_t pairs = 0;
    const double one = 1.0;
    EXPECT_EQ(ks->epol_far_bins(&one, 1, 0, &one, &one, 0, 0, &one, 100.0,
                                pairs),
              0.0);
    EXPECT_EQ(pairs, 0u);
  }
}

// ---- edge inputs ----------------------------------------------------------

TEST(SimdEdge, CoincidentDenormalAndHugeInputsStayFinite) {
  // A span mixing: the query point itself (r = 0), a point inside the
  // double guard band, denormal weights, and a huge-coordinate outlier.
  // Both vector and reference kernels must agree and stay finite; under
  // UBSan this also proves the lanes never divide by zero on masked terms.
  const double ax = 1.0, ay = 2.0, az = 3.0;
  const double denorm = std::numeric_limits<double>::denorm_min();
  std::vector<double> x{ax, ax + 1e-7, 4.0, 1e12, ax + 2e-6, -7.0, 5.5,
                        8.0, -3.0},
      y{ay, ay, 2.0, -1e12, ay, 4.0, -2.5, 1.0, 6.0},
      z{az, az, 2.0, 1e12, az, 1.0, 0.5, -4.0, 2.0};
  std::vector<double> wnx{5.0, 5.0, 0.5, 0.1, denorm, 0.2, -0.3, 0.4, 0.1},
      wny(9, 0.0), wnz(9, 0.0);
  const QPointBatch q{x, y, z, wnx, wny, wnz};
  const double ref = core::batch_born_integral(ax, ay, az, q);
  ASSERT_TRUE(std::isfinite(ref));
  for (VectorIsa isa : available_widths()) {
    const KernelSet* ks = simd::kernels(isa);
    const double got = ks->born_integral(ax, ay, az, q);
    EXPECT_TRUE(std::isfinite(got)) << ks->name;
    EXPECT_NEAR(got, ref, 1e-9 * (1.0 + std::abs(ref))) << ks->name;
    EXPECT_TRUE(std::isfinite(ks->born_integral_fast(ax, ay, az, q)))
        << ks->name;
    // Mixed mode flushes the float streams through the widened guard
    // band; everything must still be finite.
    std::vector<float> xf(9), yf(9), zf(9), wf(9), w0(9, 0.0f);
    for (int i = 0; i < 9; ++i) {
      xf[i] = static_cast<float>(x[i]);
      yf[i] = static_cast<float>(y[i]);
      zf[i] = static_cast<float>(z[i]);
      wf[i] = static_cast<float>(wnx[i]);
    }
    const QPointBatchF qf{xf, yf, zf, wf, w0, w0};
    EXPECT_TRUE(std::isfinite(ks->born_integral_mixed(ax, ay, az, qf)))
        << ks->name;
  }
}

TEST(SimdEdge, EpolSelfTermAndExtremeRadiiStayFinite) {
  // The GB pair sum has no coincidence guard by contract (f² ≥ d·e > 0);
  // feed it the self term, near-coincident pairs, and extreme-but-positive
  // radii and distances, and require every width to stay finite and agree
  // with the reference.
  const double vx = 1.0, vy = -2.0, vz = 0.5;
  std::vector<double> x{vx, vx + 1e-8, 500.0, vx + 1e-3, -300.0},
      y{vy, vy, 0.0, vy, 200.0}, z{vz, vz, 0.0, vz, -100.0};
  std::vector<double> charge{0.8, -0.5, 1.0, 0.3, -1.0};
  std::vector<double> born{1.7, 0.05, 40.0, 1.0, 2.0};
  const AtomBatch a{x, y, z, charge, born};
  const double ref = core::batch_epol_sum(vx, vy, vz, 0.8, 1.7, a);
  ASSERT_TRUE(std::isfinite(ref));
  for (VectorIsa isa : available_widths()) {
    const KernelSet* ks = simd::kernels(isa);
    const double got = ks->epol_sum(vx, vy, vz, 0.8, 1.7, a);
    EXPECT_TRUE(std::isfinite(got)) << ks->name;
    EXPECT_NEAR(got, ref, 1e-9 * (1.0 + std::abs(ref))) << ks->name;
    EXPECT_TRUE(std::isfinite(ks->epol_sum_fast(vx, vy, vz, 0.8, 1.7, a)))
        << ks->name;
    std::vector<float> xf(5), yf(5), zf(5), cf(5);
    for (int i = 0; i < 5; ++i) {
      xf[i] = static_cast<float>(x[i]);
      yf[i] = static_cast<float>(y[i]);
      zf[i] = static_cast<float>(z[i]);
      cf[i] = static_cast<float>(charge[i]);
    }
    const AtomBatchF af{xf, yf, zf, cf, born};
    EXPECT_TRUE(
        std::isfinite(ks->epol_sum_mixed(vx, vy, vz, 0.8, 1.7, af)))
        << ks->name;
  }
}

// ---- engine-level matrix --------------------------------------------------

TEST(SimdEngine, EveryWidthAgreesWithScalarVectorPath) {
  const Problem p(400);
  core::EngineConfig base;
  base.approx.vector.isa = VectorIsa::Scalar;
  const auto ref = GBEngine(p.molecule, p.surf, base).compute();
  for (VectorIsa isa : available_widths()) {
    for (Precision prec : {Precision::Double, Precision::Mixed}) {
      core::EngineConfig cfg;
      cfg.approx.vector = {isa, prec};
      const auto r = GBEngine(p.molecule, p.surf, cfg).compute();
      const bool mixed = prec == Precision::Mixed;
      const double born_tol = mixed ? 1e-4 : 1e-9;
      for (std::size_t i = 0; i < ref.born.size(); ++i)
        EXPECT_LT(rel_diff(r.born[i], ref.born[i]), born_tol)
            << simd::isa_name(isa) << (mixed ? " mixed" : "") << " atom "
            << i;
      EXPECT_LT(rel_diff(r.epol, ref.epol), mixed ? 5e-3 : 1e-6)
          << simd::isa_name(isa) << (mixed ? " mixed" : "");
      // Near/far classification is arithmetic-independent: identical
      // admissibility counters at every width and precision (this is the
      // guard-band invariant for mixed mode).
      EXPECT_EQ(r.work.born_exact, ref.work.born_exact);
      EXPECT_EQ(r.work.born_approx, ref.work.born_approx);
      EXPECT_EQ(r.work.epol_exact, ref.work.epol_exact);
      EXPECT_EQ(r.work.epol_bins, ref.work.epol_bins);
    }
  }
}

TEST(SimdEngine, WarmPlanReplayIsBitwiseAtEveryWidth) {
  const Problem p(350);
  for (VectorIsa isa : available_widths()) {
    for (Precision prec : {Precision::Double, Precision::Mixed}) {
      core::EngineConfig cfg;
      cfg.approx.vector = {isa, prec};
      GBEngine warm(p.molecule, p.surf, cfg);
      GBEngine cold(p.molecule, p.surf, cfg);
      EvalScratch scratch;
      const auto first = warm.compute(scratch);   // capture
      const auto reuse = warm.compute(scratch);   // born reuse
      EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 1u);
      EXPECT_EQ(first.epol, reuse.epol) << simd::isa_name(isa);
      // A null refit (same positions) bumps the geometry epoch, forcing
      // validate + replay; the flat lists must reproduce the traversal
      // bit for bit through the same dispatched kernels.
      std::vector<geom::Vec3> same;
      same.reserve(p.molecule.size());
      for (const auto& atom : p.molecule.atoms()) same.push_back(atom.pos);
      warm.refit_atoms(same);
      const auto replay = warm.compute(scratch);
      EXPECT_EQ(scratch.plan_cache.stats.replays, 1u);
      const auto ref = cold.compute();  // plan-off traversal
      EXPECT_EQ(replay.epol, ref.epol)
          << simd::isa_name(isa)
          << (prec == Precision::Mixed ? " mixed" : "");
      ASSERT_EQ(replay.born.size(), ref.born.size());
      for (std::size_t i = 0; i < replay.born.size(); ++i)
        ASSERT_EQ(replay.born[i], ref.born[i])
            << simd::isa_name(isa) << " atom " << i;
    }
  }
}

TEST(SimdEngine, LocalityCarvingIsBitwiseAtEveryWidthAndPrecision) {
  // Locality-aware run coalescing regroups the replay chunks but must
  // not move a single arithmetic operation: at every dispatched width
  // and precision, a warm replay with locality on reproduces the
  // locality-off replay bit for bit (serial execution, so Epol's
  // completion-order fold is fixed and comparable too).
  const Problem p(350);
  for (VectorIsa isa : available_widths()) {
    for (Precision prec : {Precision::Double, Precision::Mixed}) {
      core::EngineConfig on_cfg, off_cfg;
      on_cfg.approx.vector = {isa, prec};
      on_cfg.approx.locality = true;
      off_cfg.approx.vector = {isa, prec};
      off_cfg.approx.locality = false;
      GBEngine on(p.molecule, p.surf, on_cfg);
      GBEngine off(p.molecule, p.surf, off_cfg);
      EvalScratch s_on, s_off;
      (void)on.compute(s_on);    // capture
      (void)off.compute(s_off);  // capture
      std::vector<geom::Vec3> same;
      same.reserve(p.molecule.size());
      for (const auto& atom : p.molecule.atoms()) same.push_back(atom.pos);
      on.refit_atoms(same);   // epoch bump → validate + replay
      off.refit_atoms(same);
      const auto r_on = on.compute(s_on);
      const auto r_off = off.compute(s_off);
      EXPECT_EQ(s_on.plan_cache.stats.replays, 1u);
      EXPECT_EQ(s_off.plan_cache.stats.replays, 1u);
      EXPECT_EQ(r_on.epol, r_off.epol)
          << simd::isa_name(isa)
          << (prec == Precision::Mixed ? " mixed" : "");
      ASSERT_EQ(r_on.born.size(), r_off.born.size());
      for (std::size_t i = 0; i < r_on.born.size(); ++i)
        ASSERT_EQ(r_on.born[i], r_off.born[i])
            << simd::isa_name(isa) << " atom " << i;
    }
  }
}

TEST(SimdEngine, VectorSwitchRepopulatesBornCache) {
  const Problem p(300);
  core::EngineConfig cfg;
  cfg.approx.vector = {VectorIsa::Auto, Precision::Double};
  GBEngine engine(p.molecule, p.surf, cfg);
  EvalScratch scratch;
  const auto dbl = engine.compute(scratch);  // capture + store
  // Precision flip: the PlanKey is unchanged (partition is arithmetic-
  // independent), so the plan itself is reused — but the Born stamp
  // differs, so the radii must be recomputed via replay, never served
  // from the Double-mode cache.
  engine.approx().vector.precision = Precision::Mixed;
  const auto mixed = engine.compute(scratch);
  EXPECT_EQ(scratch.plan_cache.stats.key_hits, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 0u);
  EXPECT_EQ(scratch.plan_cache.stats.replays, 1u);
  // And back: still no stale reuse, and the Double result reproduces.
  engine.approx().vector.precision = Precision::Double;
  const auto dbl2 = engine.compute(scratch);
  EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 0u);
  EXPECT_EQ(dbl2.epol, dbl.epol);
  if (simd::resolve_isa(VectorIsa::Auto) != VectorIsa::Scalar) {
    // With a real vector unit, mixed radii genuinely differ from double
    // ones — serving the cache across the switch would have been wrong.
    EXPECT_NE(mixed.epol, dbl.epol);
  }
  // Unchanged params now: the cache finally serves.
  engine.compute(scratch);
  EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 1u);
}
