// Differential tests guarding the batched SoA near-field kernels: the
// batched path must agree with the scalar path up to floating-point
// reassociation at every level (raw kernel, octree engine, dual
// traversal, naive reference), and the batched-by-default octree energy
// must stay inside the paper's (1+ε) approximation bound against the
// naive reference. Also pins down the kernels' edge-case contracts:
// empty/single-point batches, the branchless |r−a| < 1e-6 skip, and the
// self-term inclusion of batch_epol_sum.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "octgb/core/batch_kernels.hpp"
#include "octgb/core/born.hpp"
#include "octgb/core/engine.hpp"
#include "octgb/core/fastmath.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;
using core::AtomBatch;
using core::EngineConfig;
using core::GBEngine;
using core::KernelKind;
using core::QPointBatch;

namespace {

struct Problem {
  mol::Molecule molecule;
  surface::Surface surf;

  explicit Problem(std::size_t atoms, std::uint64_t seed)
      : molecule(mol::generate_protein({.target_atoms = atoms, .seed = seed})),
        surf(surface::build_surface(molecule, {.subdivision = 1})) {}
};

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max(1e-300, std::abs(b));
}

/// Scalar reference for batch_born_integral (the born.cpp leaf loop).
double scalar_born_integral(double ax, double ay, double az,
                            const QPointBatch& q) {
  double s = 0.0;
  for (std::size_t k = 0; k < q.size(); ++k) {
    const double dx = q.x[k] - ax, dy = q.y[k] - ay, dz = q.z[k] - az;
    const double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < 1e-12) continue;
    s += (q.wnx[k] * dx + q.wny[k] * dy + q.wnz[k] * dz) /
         (r2 * r2 * r2);
  }
  return s;
}

/// Scalar reference for batch_epol_sum (the epol.cpp leaf loop).
double scalar_epol_sum(double vx, double vy, double vz, double qv, double rv,
                       const AtomBatch& atoms) {
  double s = 0.0;
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    const double dx = atoms.x[k] - vx, dy = atoms.y[k] - vy,
                 dz = atoms.z[k] - vz;
    const double r2 = dx * dx + dy * dy + dz * dz;
    s += atoms.charge[k] * qv / core::f_gb(r2, atoms.born[k] * rv);
  }
  return s;
}

}  // namespace

// ---- randomized batched-vs-scalar agreement ------------------------------

TEST(KernelDiff, RawBornKernelMatchesScalarOnRealLeaves) {
  for (std::uint64_t seed : {1, 7, 23}) {
    const Problem p(300, seed);
    GBEngine engine(p.molecule, p.surf);
    const auto& ta = engine.atoms_tree();
    const auto& tq = engine.qpoints_tree();
    for (std::uint32_t q_id : tq.tree.leaf_ids()) {
      const QPointBatch qb = tq.node_batch(tq.tree.node(q_id));
      for (std::size_t ai = 0; ai < std::min<std::size_t>(ta.num_atoms(), 64);
           ++ai) {
        const double batched = core::batch_born_integral(
            ta.soa_x()[ai], ta.soa_y()[ai], ta.soa_z()[ai], qb);
        const double scalar = scalar_born_integral(ta.soa_x()[ai], ta.soa_y()[ai],
                                                   ta.soa_z()[ai], qb);
        EXPECT_NEAR(batched, scalar, 1e-9 * (1.0 + std::abs(scalar)))
            << "seed " << seed << " leaf " << q_id << " atom " << ai;
      }
    }
  }
}

TEST(KernelDiff, RawEpolKernelMatchesScalarOnRealLeaves) {
  for (std::uint64_t seed : {2, 11, 31}) {
    const Problem p(300, seed);
    GBEngine engine(p.molecule, p.surf);
    const auto& ta = engine.atoms_tree();
    const auto born = core::naive_born_radii(p.molecule, p.surf);
    // Tree-order Born plane, as the engine's phases would hold it.
    std::vector<double> born_tree(born.size());
    const auto idx = ta.tree.point_index();
    for (std::size_t pos = 0; pos < idx.size(); ++pos)
      born_tree[pos] = born[idx[pos]];
    const auto& leaves = ta.tree.leaf_ids();
    for (std::size_t li = 0; li < leaves.size(); ++li) {
      const auto& u = ta.tree.node(leaves[li]);
      const AtomBatch ub = ta.node_batch(u, born_tree);
      const std::uint32_t vi = ta.tree.node(leaves[(li + 1) % leaves.size()])
                                   .begin;
      const double batched =
          core::batch_epol_sum(ta.soa_x()[vi], ta.soa_y()[vi], ta.soa_z()[vi],
                               ta.charge[vi], born_tree[vi], ub);
      const double scalar =
          scalar_epol_sum(ta.soa_x()[vi], ta.soa_y()[vi], ta.soa_z()[vi],
                          ta.charge[vi], born_tree[vi], ub);
      EXPECT_NEAR(batched, scalar, 1e-10 * (1.0 + std::abs(scalar)))
          << "seed " << seed << " leaf " << leaves[li];
    }
  }
}

/// Whole-engine differential sweep over many random molecules: identical
/// traversal decisions, sums differing only by reassociation.
TEST(KernelDiff, EngineBatchedMatchesScalarManySeeds) {
  for (std::uint64_t seed : {3, 5, 17, 29, 41, 53}) {
    const Problem p(250 + 40 * (seed % 5), seed);
    EngineConfig scalar_cfg;
    scalar_cfg.approx.kernel = KernelKind::Scalar;
    EngineConfig batched_cfg;
    batched_cfg.approx.kernel = KernelKind::Batched;
    const auto rs = GBEngine(p.molecule, p.surf, scalar_cfg).compute();
    const auto rb = GBEngine(p.molecule, p.surf, batched_cfg).compute();
    ASSERT_EQ(rs.born.size(), rb.born.size());
    for (std::size_t i = 0; i < rs.born.size(); ++i)
      EXPECT_LT(rel_diff(rb.born[i], rs.born[i]), 1e-9)
          << "seed " << seed << " atom " << i;
    // Epol tolerance is looser: a Born radius moving by one ulp can cross
    // an EpolContext bin edge and shift one atom's far-field binning.
    EXPECT_LT(rel_diff(rb.epol, rs.epol), 1e-6) << "seed " << seed;
    // Identical admissibility decisions: the work counters must agree
    // exactly, not just the physics.
    EXPECT_EQ(rb.work.born_exact, rs.work.born_exact) << "seed " << seed;
    EXPECT_EQ(rb.work.epol_exact, rs.work.epol_exact) << "seed " << seed;
  }
}

TEST(KernelDiff, DualTraversalBatchedMatchesScalar) {
  const Problem p(400, 13);
  EngineConfig scalar_cfg;
  scalar_cfg.approx.kernel = KernelKind::Scalar;
  EngineConfig batched_cfg;
  batched_cfg.approx.kernel = KernelKind::Batched;
  const auto rs = GBEngine(p.molecule, p.surf, scalar_cfg).compute_dual();
  const auto rb = GBEngine(p.molecule, p.surf, batched_cfg).compute_dual();
  for (std::size_t i = 0; i < rs.born.size(); ++i)
    EXPECT_LT(rel_diff(rb.born[i], rs.born[i]), 1e-9) << "atom " << i;
  EXPECT_LT(rel_diff(rb.epol, rs.epol), 1e-6);
}

TEST(KernelDiff, NaiveBatchedMatchesScalar) {
  for (std::uint64_t seed : {4, 19}) {
    const Problem p(300, seed);
    const auto born_s =
        core::naive_born_radii(p.molecule, p.surf, nullptr,
                               KernelKind::Scalar);
    const auto born_b =
        core::naive_born_radii(p.molecule, p.surf, nullptr,
                               KernelKind::Batched);
    ASSERT_EQ(born_s.size(), born_b.size());
    for (std::size_t i = 0; i < born_s.size(); ++i)
      EXPECT_LT(rel_diff(born_b[i], born_s[i]), 1e-9) << "atom " << i;
    const double es = core::naive_epol(p.molecule, born_s, {}, nullptr,
                                       KernelKind::Scalar);
    const double eb = core::naive_epol(p.molecule, born_s, {}, nullptr,
                                       KernelKind::Batched);
    EXPECT_LT(rel_diff(eb, es), 1e-10) << "seed " << seed;
  }
}

/// The §V-C approximate-math mode must vectorize too: the batched fastmath
/// kernels use the same per-term fast_rsqrt/fast_exp as the scalar
/// approximate path, so batched-fast vs scalar-fast is again pure
/// reassociation.
TEST(KernelDiff, FastmathBatchedMatchesFastmathScalar) {
  const Problem p(350, 37);
  EngineConfig scalar_cfg;
  scalar_cfg.approx.approx_math = true;
  scalar_cfg.approx.kernel = KernelKind::Scalar;
  EngineConfig batched_cfg;
  batched_cfg.approx.approx_math = true;
  batched_cfg.approx.kernel = KernelKind::Batched;
  const auto rs = GBEngine(p.molecule, p.surf, scalar_cfg).compute();
  const auto rb = GBEngine(p.molecule, p.surf, batched_cfg).compute();
  for (std::size_t i = 0; i < rs.born.size(); ++i)
    EXPECT_LT(rel_diff(rb.born[i], rs.born[i]), 1e-9) << "atom " << i;
  EXPECT_LT(rel_diff(rb.epol, rs.epol), 1e-6);
  // And the fastmath mode stays in the right ballpark of exact math
  // (§V-C reports 4–5 % on the paper's molecules; this generator's charge
  // distribution sees ~7 %).
  EngineConfig exact_cfg;
  const auto re = GBEngine(p.molecule, p.surf, exact_cfg).compute();
  EXPECT_LT(rel_diff(rb.epol, re.epol), 0.10);
}

// ---- paper's (1+ε) bound on the batched default path ---------------------

class BatchedEpsilonBound : public ::testing::TestWithParam<double> {};

TEST_P(BatchedEpsilonBound, BatchedOctreeEpolWithinBoundOfNaive) {
  const double eps = GetParam();
  for (std::uint64_t seed : {6, 43}) {
    const Problem p(400, seed);
    const auto naive_born = core::naive_born_radii(
        p.molecule, p.surf, nullptr, KernelKind::Scalar);
    const double naive_e = core::naive_epol(p.molecule, naive_born, {},
                                            nullptr, KernelKind::Scalar);
    EngineConfig cfg;  // batched kernel by default
    cfg.approx.eps_born = eps;
    cfg.approx.eps_epol = eps;
    const auto r = GBEngine(p.molecule, p.surf, cfg).compute();
    EXPECT_LE(std::abs(r.epol - naive_e), eps * std::abs(naive_e))
        << "eps " << eps << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperEpsilons, BatchedEpsilonBound,
                         ::testing::Values(0.2, 0.5, 1.0));

// ---- edge-case contracts -------------------------------------------------

TEST(BatchKernelEdge, EmptyBatchesReturnZero) {
  const QPointBatch empty_q{};
  EXPECT_EQ(core::batch_born_integral(1.0, 2.0, 3.0, empty_q), 0.0);
  EXPECT_EQ(core::batch_born_integral_fast(1.0, 2.0, 3.0, empty_q), 0.0);
  const AtomBatch empty_a{};
  EXPECT_EQ(core::batch_epol_sum(1.0, 2.0, 3.0, 0.5, 1.5, empty_a), 0.0);
  EXPECT_EQ(core::batch_epol_sum_fast(1.0, 2.0, 3.0, 0.5, 1.5, empty_a),
            0.0);
}

TEST(BatchKernelEdge, SinglePointBatchMatchesClosedForm) {
  const std::vector<double> x{3.0}, y{0.0}, z{0.0};
  const std::vector<double> wnx{0.25}, wny{0.0}, wnz{0.0};
  const QPointBatch q{x, y, z, wnx, wny, wnz};
  // Atom at origin: delta = (3,0,0), r² = 9, w·n·delta = 0.75.
  EXPECT_NEAR(core::batch_born_integral(0.0, 0.0, 0.0, q), 0.75 / 729.0,
              1e-15);

  const std::vector<double> charge{-0.7}, born{2.0};
  const AtomBatch a{x, y, z, charge, born};
  const double expect = 0.4 * -0.7 / core::f_gb(9.0, 2.0 * 1.5);
  EXPECT_NEAR(core::batch_epol_sum(0.0, 0.0, 0.0, 0.4, 1.5, a), expect,
              1e-15);
}

TEST(BatchKernelEdge, CoincidentPointsAreSkippedBranchlessly) {
  // Three points: one exactly on the atom, one at |r−a| = 1e-7 (inside
  // the r² < 1e-12 guard), one at a normal distance. Only the last may
  // contribute, and the sum must be finite (no 1/0 even with the masked
  // terms evaluated branchlessly).
  const std::vector<double> x{1.0, 1.0 + 1e-7, 4.0}, y{2.0, 2.0, 2.0},
      z{3.0, 3.0, 3.0};
  const std::vector<double> wnx{5.0, 5.0, 0.5}, wny{0.0, 0.0, 0.0},
      wnz{0.0, 0.0, 0.0};
  const QPointBatch q{x, y, z, wnx, wny, wnz};
  const double sum = core::batch_born_integral(1.0, 2.0, 3.0, q);
  EXPECT_TRUE(std::isfinite(sum));
  EXPECT_NEAR(sum, 0.5 * 3.0 / std::pow(9.0, 3.0), 1e-15);
  const double fast_sum = core::batch_born_integral_fast(1.0, 2.0, 3.0, q);
  EXPECT_TRUE(std::isfinite(fast_sum));
  EXPECT_NEAR(fast_sum, sum, 1e-4 * sum);  // fast_rsqrt ≈ 5e-6, ^6 ≈ 3e-5
  // A point just *outside* the guard must contribute (the guard is a
  // coincidence skip, not a near-field cutoff).
  const std::vector<double> x2{1.0 + 2e-6}, y2{2.0}, z2{3.0};
  const std::vector<double> wnx2{1.0}, wny2{0.0}, wnz2{0.0};
  EXPECT_GT(core::batch_born_integral(1.0, 2.0, 3.0,
                                      {x2, y2, z2, wnx2, wny2, wnz2}),
            0.0);
}

TEST(BatchKernelEdge, EpolSelfTermIsIncludedByContract) {
  // A batch containing the query atom itself: the r = 0 diagonal term is
  // q_v² / f_GB(0, R_v²) = q_v² / R_v, NOT skipped. Callers that want it
  // excluded must slice the batch; the octree kernels keep it by design.
  const std::vector<double> x{1.0}, y{-2.0}, z{0.5};
  const std::vector<double> charge{0.8}, born{1.7};
  const AtomBatch self{x, y, z, charge, born};
  EXPECT_NEAR(core::batch_epol_sum(1.0, -2.0, 0.5, 0.8, 1.7, self),
              0.8 * 0.8 / 1.7, 1e-14);
  // fast_exp(0) undershoots 1 by a few percent (Schraudolph), so the fast
  // self term carries that error through sqrt — allow the §V-C band.
  EXPECT_NEAR(core::batch_epol_sum_fast(1.0, -2.0, 0.5, 0.8, 1.7, self),
              0.8 * 0.8 / 1.7, 0.05 * 0.8 * 0.8 / 1.7);
}

TEST(BatchKernelEdge, BornFarTermCoincidentCentroidsContributeZero) {
  // The admissibility criterion never admits d = 0, but direct calls and
  // degenerate single-point geometry can produce coincident (or NaN)
  // centroids; the far term must yield 0, not ±inf or NaN.
  const geom::Vec3 c{1.0, -2.0, 3.0};
  const geom::Vec3 wn{5.0, 7.0, -1.0};
  EXPECT_EQ(core::born_far_term(c, c, wn, /*approx_math=*/false), 0.0);
  EXPECT_EQ(core::born_far_term(c, c, wn, /*approx_math=*/true), 0.0);
  // Inside the r² ≤ 1e-12 coincidence band: still zero.
  const geom::Vec3 near_c{1.0 + 1e-7, -2.0, 3.0};
  EXPECT_EQ(core::born_far_term(c, near_c, wn, false), 0.0);
  // NaN centroid (poisoned upstream geometry) must not leak NaN into the
  // node partial.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(core::born_far_term(c, {nan, 0.0, 0.0}, wn, false), 0.0);
  // Just outside the band: a genuine (huge but finite) contribution.
  const geom::Vec3 out_c{1.0 + 2e-6, -2.0, 3.0};
  const double t = core::born_far_term(c, out_c, wn, false);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, 0.0);
}

TEST(BatchKernelEdge, ScalarBornPairSkipsCoincidentQPoints) {
  // A q-point exactly on the atom and one inside the guard band must be
  // skipped; a zero-weight q-point outside the band contributes exactly 0
  // without perturbing the sum.
  const mol::Molecule m = mol::generate_protein({.target_atoms = 40,
                                                 .seed = 9});
  const surface::Surface s = surface::build_surface(m, {.subdivision = 0});
  core::EngineConfig cfg;
  GBEngine engine(m, s, cfg);
  const auto& tq = engine.qpoints_tree();
  const auto q_pts = tq.tree.points();
  // Query placed exactly on the first q-point of the full range.
  const double v = core::scalar_born_pair(
      q_pts[0], tq, 0, static_cast<std::uint32_t>(tq.num_points()), false);
  EXPECT_TRUE(std::isfinite(v));
  const double vf = core::scalar_born_pair(
      q_pts[0], tq, 0, static_cast<std::uint32_t>(tq.num_points()), true);
  EXPECT_TRUE(std::isfinite(vf));
}

TEST(BatchKernelEdge, CriterionBoundaryPairsClassifyConsistently) {
  // born_far_enough admits the boundary (≤): (d+s) == pow·(d−s) is far.
  // Degenerate zero-radius nodes are far whenever d > 0.
  EXPECT_TRUE(core::born_far_enough(1.0, 0.0, 0.0, 1.2));
  EXPECT_FALSE(core::born_far_enough(0.0, 0.0, 0.0, 1.2));  // den == 0
  // Touching nodes (d == ra + rq): denominator zero, never far.
  EXPECT_FALSE(core::born_far_enough(3.0, 2.0, 1.0, 1e12));
  // Exact boundary: pow = (d+s)/(d−s) with d=5, s=1 → 6/4 = 1.5.
  EXPECT_TRUE(core::born_far_enough(5.0, 0.5, 0.5, 1.5));
  EXPECT_FALSE(core::born_far_enough(5.0, 0.5, 0.5,
                                     std::nextafter(1.5, 0.0)));
  // epol_far_enough is strict (>): equality is near.
  const double eps = 0.5;
  const double bound = (1.0 + 2.0) * (1.0 + 2.0 / eps);  // ru+rv = 3
  EXPECT_FALSE(core::epol_far_enough(bound, 1.0, 2.0, eps));
  EXPECT_TRUE(
      core::epol_far_enough(std::nextafter(bound, 1e300), 1.0, 2.0, eps));
}

TEST(BatchKernelEdge, FastExpIsHardenedAgainstNanAndOverflow) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaN must map to 0 (the !(t > 0) guard), never reach the float→int
  // cast, and never leak NaN downstream.
  EXPECT_EQ(core::fast_exp(nan), 0.0);
  // Deep underflow and −inf: exactly 0.
  EXPECT_EQ(core::fast_exp(-1000.0), 0.0);
  EXPECT_EQ(core::fast_exp(-inf), 0.0);
  // Overflow (beyond the ~709 usable range) and +inf: clamp to +inf
  // instead of a UB cast of a value ≥ 2^63.
  EXPECT_EQ(core::fast_exp(1000.0), inf);
  EXPECT_EQ(core::fast_exp(inf), inf);
  // The usable range is untouched by the hardening: a few percent of exp.
  for (double x : {-20.0, -1.0, -0.1, 0.0, 0.1, 1.0, 20.0}) {
    const double approx = core::fast_exp(x);
    EXPECT_TRUE(std::isfinite(approx)) << "x " << x;
    EXPECT_NEAR(approx, std::exp(x), 0.05 * std::exp(x)) << "x " << x;
  }
}

TEST(BatchKernelEdge, SplitSoaRoundTrips) {
  const std::vector<geom::Vec3> pts{{1, 2, 3}, {-4, 5, -6}, {0, 0, 7}};
  std::vector<double> x(3), y(3), z(3);
  core::split_soa(pts, x, y, z);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(x[i], pts[i].x);
    EXPECT_EQ(y[i], pts[i].y);
    EXPECT_EQ(z[i], pts[i].z);
  }
}
