// Build-equivalence differential for the Morton linear-octree pipeline:
// the sort-based builder must produce the same tree the legacy recursive
// partitioner produces (same topology, same leaf partitions, matching
// geometry), builds must be bit-identical across schedulers and worker
// counts, and the re-sort refit must be bit-identical to a from-scratch
// build on the pinned grid. Divergences that are by design (coincident
// points) are pinned explicitly.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "octgb/mol/generate.hpp"
#include "octgb/octree/dynamic.hpp"
#include "octgb/octree/octree.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"
#include "octgb/ws/scheduler.hpp"

using namespace octgb;
using octree::BuildParams;
using octree::BuildStrategy;
using octree::Octree;

namespace {

std::vector<geom::Vec3> random_points(std::size_t n, std::uint64_t seed,
                                      double extent = 40.0) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec3> pts(n);
  for (auto& p : pts)
    p = {rng.uniform(-extent, extent), rng.uniform(-extent, extent),
         rng.uniform(-extent, extent)};
  return pts;
}

std::vector<geom::Vec3> protein_points(int atoms, std::uint64_t seed) {
  const auto m = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(atoms),
       .seed = static_cast<std::uint32_t>(seed)});
  std::vector<geom::Vec3> pts(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) pts[i] = m.atom(i).pos;
  return pts;
}

/// Leaf partitions as sets of *original input ids* — the
/// representation-independent statement of "the same tree".
std::vector<std::set<std::uint32_t>> leaf_partition(const Octree& t) {
  std::vector<std::set<std::uint32_t>> out;
  for (const auto id : t.leaf_ids()) {
    const auto& n = t.node(id);
    out.emplace_back(t.point_index().begin() + n.begin,
                     t.point_index().begin() + n.end);
  }
  return out;
}

/// Topology must match field for field; geometry to tight tolerance (the
/// two builders visit a node's points in different orders, so centroid
/// sums associate differently in the last bits).
void expect_same_tree(const Octree& a, const Octree& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  ASSERT_EQ(a.num_points(), b.num_points());
  EXPECT_EQ(a.max_depth(), b.max_depth());
  EXPECT_EQ(a.leaf_ids(), b.leaf_ids());
  for (std::uint32_t i = 0; i < a.nodes().size(); ++i) {
    const auto& na = a.node(i);
    const auto& nb = b.node(i);
    EXPECT_EQ(na.begin, nb.begin) << "node " << i;
    EXPECT_EQ(na.end, nb.end) << "node " << i;
    EXPECT_EQ(na.first_child, nb.first_child) << "node " << i;
    EXPECT_EQ(na.child_count, nb.child_count) << "node " << i;
    EXPECT_EQ(na.depth, nb.depth) << "node " << i;
    EXPECT_NEAR(na.centroid.x, nb.centroid.x, 1e-9) << "node " << i;
    EXPECT_NEAR(na.centroid.y, nb.centroid.y, 1e-9) << "node " << i;
    EXPECT_NEAR(na.centroid.z, nb.centroid.z, 1e-9) << "node " << i;
    EXPECT_NEAR(na.radius, nb.radius, 1e-9) << "node " << i;
  }
  EXPECT_EQ(leaf_partition(a), leaf_partition(b));
}

/// Bitwise equality: every stored array identical to the last bit. Used
/// where the contract is determinism (same pipeline, different schedule)
/// rather than equivalence (different pipelines).
void expect_bit_identical(const Octree& a, const Octree& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  ASSERT_EQ(a.num_points(), b.num_points());
  for (std::uint32_t i = 0; i < a.nodes().size(); ++i) {
    const auto& na = a.node(i);
    const auto& nb = b.node(i);
    EXPECT_EQ(na.centroid, nb.centroid) << "node " << i;
    EXPECT_EQ(na.radius, nb.radius) << "node " << i;
    EXPECT_EQ(na.begin, nb.begin) << "node " << i;
    EXPECT_EQ(na.end, nb.end) << "node " << i;
    EXPECT_EQ(na.first_child, nb.first_child) << "node " << i;
    EXPECT_EQ(na.child_count, nb.child_count) << "node " << i;
    EXPECT_EQ(na.depth, nb.depth) << "node " << i;
  }
  EXPECT_TRUE(std::ranges::equal(a.point_index(), b.point_index()));
  EXPECT_TRUE(std::ranges::equal(a.points(), b.points()));
  EXPECT_TRUE(std::ranges::equal(a.keys(), b.keys()));
  EXPECT_TRUE(std::ranges::equal(a.soa_x(), b.soa_x()));
  EXPECT_TRUE(std::ranges::equal(a.soa_y(), b.soa_y()));
  EXPECT_TRUE(std::ranges::equal(a.soa_z(), b.soa_z()));
  EXPECT_EQ(a.grid(), b.grid());
  EXPECT_EQ(a.leaf_ids(), b.leaf_ids());
  EXPECT_EQ(a.max_depth(), b.max_depth());
}

}  // namespace

// ---- Morton vs legacy --------------------------------------------------------

class BuildEquivalence : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(BuildEquivalence, MortonMatchesLegacyOnRandomClouds) {
  const auto [n, leaf] = GetParam();
  BuildParams params;
  params.max_leaf_size = static_cast<std::uint32_t>(leaf);
  const auto pts = random_points(n, 9000 + n + leaf);
  params.strategy = BuildStrategy::Morton;
  const Octree morton = Octree::build(pts, params);
  const Octree legacy = Octree::build_legacy(pts, params);
  EXPECT_TRUE(morton.validate());
  EXPECT_TRUE(legacy.validate());
  ASSERT_TRUE(morton.has_morton());
  ASSERT_FALSE(legacy.has_morton());
  expect_same_tree(morton, legacy);
  EXPECT_EQ(morton.build_stats().morton_builds, 1u);
  EXPECT_EQ(legacy.build_stats().legacy_builds, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Clouds, BuildEquivalence,
    ::testing::Combine(::testing::Values(1, 7, 64, 500, 3000),
                       ::testing::Values(1, 8, 32, 128)));

TEST(BuildEquivalenceProtein, MortonMatchesLegacyOnProteinCloud) {
  // Clustered, realistic geometry (backbone + sidechains), not a uniform
  // cloud — exercises deep subtrees and uneven octant occupancy.
  const auto pts = protein_points(4000, 77);
  const Octree morton = Octree::build(pts);
  const Octree legacy = Octree::build_legacy(pts);
  expect_same_tree(morton, legacy);
}

TEST(BuildEquivalenceProtein, CoincidentPointsDivergeByDesign) {
  // Pinned divergence: equal Morton keys can never be separated by more
  // digits, so the Morton builder leafs the run immediately, while the
  // legacy partitioner chases the depth cap first. Same leaf *partition*,
  // different internal chain.
  std::vector<geom::Vec3> pts(64, {2, 2, 2});
  BuildParams params;
  params.max_leaf_size = 8;
  const Octree morton = Octree::build(pts, params);
  const Octree legacy = Octree::build_legacy(pts, params);
  EXPECT_TRUE(morton.validate());
  EXPECT_TRUE(legacy.validate());
  EXPECT_EQ(morton.nodes().size(), 1u);
  EXPECT_LE(morton.nodes().size(), legacy.nodes().size());
  EXPECT_EQ(leaf_partition(morton).size(), 1u);
}

TEST(BuildEquivalenceProtein, PinnedGridBuildMatchesAutoGrid) {
  // build() is defined as build_with_grid() over the points' own cubified
  // bounding box — the resort contract depends on this equivalence.
  const auto pts = protein_points(1500, 78);
  BuildParams params;
  const Octree auto_grid = Octree::build(pts, params);
  const Octree pinned = Octree::build_with_grid(
      pts, octree::MortonGrid::of(pts, params.grid_bits), params);
  expect_bit_identical(auto_grid, pinned);
}

// ---- scheduler determinism ---------------------------------------------------

TEST(SchedulerSortDeterminism, SerialAndParallelBuildsAreBitIdentical) {
  const auto pts = protein_points(9000, 79);
  BuildParams serial_params;
  serial_params.parallel = false;
  const Octree serial = Octree::build(pts, serial_params);
  BuildParams parallel_params;
  parallel_params.parallel = true;
  const Octree parallel = Octree::build(pts, parallel_params);
  expect_bit_identical(serial, parallel);
  // The radix path reports its (deterministic) permute-pass count; the
  // comparison sort reports none.
  EXPECT_GT(serial.build_stats().sort_passes, 0u);
}

TEST(SchedulerSortDeterminism, TreeIsIdenticalAcrossWorkerCounts) {
  // The parallel merge sort must produce the same (key, id) sequence for
  // every worker count and every steal schedule — the tree (and therefore
  // every energy computed over it) cannot depend on the machine. Also the
  // TSan target for the sort path.
  const auto pts = protein_points(9000, 80);
  BuildParams params;
  params.parallel = true;
  const Octree reference = Octree::build(pts, params);
  for (const int workers : {1, 2, 4}) {
    ws::Scheduler sched(workers);
    Octree t;
    sched.run([&] { t = Octree::build(pts, params); });
    expect_bit_identical(reference, t);
  }
}

// ---- re-sort refit -----------------------------------------------------------

namespace {

/// Small bounded jiggle, clamped into the build grid's cube: the cube is
/// the points' tight bounding box, so an unclamped outward step on a hull
/// atom would (correctly) escape the grid and force a rebuild instead.
std::vector<geom::Vec3> jiggle(std::span<const geom::Vec3> pts,
                               const octree::MortonGrid& grid,
                               std::uint64_t seed, double amp) {
  util::Xoshiro256 rng(seed);
  const double side = grid.cell * grid.side();
  std::vector<geom::Vec3> out(pts.begin(), pts.end());
  for (auto& p : out) {
    p.x = std::clamp(p.x + rng.uniform(-amp, amp), grid.origin.x,
                     grid.origin.x + side);
    p.y = std::clamp(p.y + rng.uniform(-amp, amp), grid.origin.y,
                     grid.origin.y + side);
    p.z = std::clamp(p.z + rng.uniform(-amp, amp), grid.origin.z,
                     grid.origin.z + side);
  }
  return out;
}

}  // namespace

TEST(Resort, BitIdenticalToFreshBuildOnThePinnedGrid) {
  const auto pts = protein_points(2000, 81);
  BuildParams params;
  Octree t = Octree::build(pts, params);
  const octree::MortonGrid grid = t.grid();
  const auto moved = jiggle(pts, grid, 82, 0.4);
  ASSERT_TRUE(t.resort(moved, params));
  EXPECT_TRUE(t.validate());
  const Octree fresh = Octree::build_with_grid(moved, grid, params);
  expect_bit_identical(t, fresh);
  EXPECT_EQ(t.build_stats().resorts, 1u);
  EXPECT_GT(t.build_stats().resort_moved, 0u);
}

TEST(Resort, NoMovementIsABitwiseNoop) {
  const auto pts = random_points(800, 83);
  BuildParams params;
  Octree t = Octree::build(pts, params);
  const Octree before = t;
  ASSERT_TRUE(t.resort(pts, params));
  expect_bit_identical(t, before);
  EXPECT_EQ(t.build_stats().resort_moved, 0u);
}

TEST(Resort, EscapedPointLeavesTreeUntouchedAndReportsFalse) {
  const auto pts = random_points(500, 84);
  BuildParams params;
  Octree t = Octree::build(pts, params);
  const Octree before = t;
  auto moved = std::vector<geom::Vec3>(pts.begin(), pts.end());
  moved[123] = {1e6, 1e6, 1e6};  // far outside the build cube
  EXPECT_FALSE(t.resort(moved, params));
  expect_bit_identical(t, before);  // strong exception-safety analogue
}

TEST(Resort, LegacyTreeRefusesToResort) {
  // Calling resort on a tree without Morton state is a programming error,
  // not a drift outcome — it trips a check instead of returning false.
  const auto pts = random_points(300, 85);
  Octree t = Octree::build_legacy(pts);
  EXPECT_THROW(t.resort(pts, {}), util::CheckError);
}

TEST(Resort, RepeatedResortsTrackFreshBuilds) {
  // A trajectory of jiggles: after every step the resorted tree must equal
  // the from-scratch build, and quality must never degrade (unlike refit,
  // which inflates leaves).
  const auto pts = protein_points(1200, 86);
  BuildParams params;
  Octree t = Octree::build(pts, params);
  const octree::MortonGrid grid = t.grid();
  std::vector<geom::Vec3> current(pts.begin(), pts.end());
  for (int step = 1; step <= 4; ++step) {
    current = jiggle(current, grid, 90 + step, 0.3);
    ASSERT_TRUE(t.resort(current, params)) << "step " << step;
    expect_bit_identical(t, Octree::build_with_grid(current, grid, params));
  }
  EXPECT_EQ(t.build_stats().resorts, 4u);
}

// ---- DynamicOctree resort policy ---------------------------------------------

TEST(DynamicResort, UpdateResortsInsteadOfRefitting) {
  const auto pts = protein_points(1500, 95);
  octree::DynamicOctree::Params params;
  params.enable_resort = true;
  octree::DynamicOctree dyn(pts, params);
  ASSERT_TRUE(dyn.tree().has_morton());
  const auto moved = jiggle(pts, dyn.tree().grid(), 96, 0.5);
  EXPECT_FALSE(dyn.update(moved));  // not a rebuild
  EXPECT_EQ(dyn.resorts(), 1u);
  EXPECT_EQ(dyn.refits(), 0u);
  EXPECT_EQ(dyn.rebuilds(), 0u);
  // Re-sorting restores build-fresh quality: no leaf inflation at all.
  EXPECT_LE(dyn.worst_leaf_inflation(), 1.0 + 1e-12);
  expect_bit_identical(dyn.tree(),
                       Octree::build_with_grid(moved, dyn.tree().grid(),
                                               params.build));
}

TEST(DynamicResort, EscapeFallsBackToFullRebuild) {
  const auto pts = random_points(600, 97);
  octree::DynamicOctree::Params params;
  params.enable_resort = true;
  octree::DynamicOctree dyn(pts, params);
  auto moved = std::vector<geom::Vec3>(pts.begin(), pts.end());
  moved[11] = {5e5, -5e5, 5e5};
  EXPECT_TRUE(dyn.update(moved));  // rebuild happened
  EXPECT_EQ(dyn.rebuilds(), 1u);
  EXPECT_EQ(dyn.resorts(), 0u);
  EXPECT_TRUE(dyn.tree().validate());
  EXPECT_EQ(dyn.tree().num_points(), pts.size());
}

TEST(DynamicResort, DisabledPolicyStillRefits) {
  const auto pts = random_points(600, 98);
  octree::DynamicOctree::Params params;
  params.enable_resort = false;  // default: the original refit policy
  octree::DynamicOctree dyn(pts, params);
  const auto moved = jiggle(pts, dyn.tree().grid(), 99, 0.05);
  EXPECT_FALSE(dyn.update(moved));
  EXPECT_EQ(dyn.refits(), 1u);
  EXPECT_EQ(dyn.resorts(), 0u);
}
