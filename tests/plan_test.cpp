// Interaction-plan lifecycle tests (core/plan.hpp): capture / replay /
// Born-reuse equivalence against the recursive traversal, key-based
// invalidation (params, topology), refit validation and drift recapture,
// and the allocation-free steady state of the warm path.
//
// The load-bearing invariant everywhere: any plan-driven Born result is
// bit-identical to the serial recursive traversal at the same geometry
// and parameters (DESIGN.md §2.6). The cold compute() wrapper always runs
// with the plan off, so it is the traversal reference.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "octgb/core/engine.hpp"
#include "octgb/core/session.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/trace/metrics.hpp"
#include "octgb/util/rng.hpp"

using namespace octgb;
using core::EvalScratch;
using core::GBEngine;
using core::PlanMode;

namespace {

struct Problem {
  mol::Molecule molecule;
  surface::Surface surf;
  explicit Problem(std::size_t atoms, std::uint64_t seed = 91)
      : molecule(mol::generate_protein({.target_atoms = atoms, .seed = seed})),
        surf(surface::build_surface(molecule, {.subdivision = 1})) {}
};

/// Input-order atom positions displaced by a uniform jitter in
/// [-scale, scale]³ — small scales keep every admissibility decision,
/// large ones flip some.
std::vector<geom::Vec3> jittered_positions(const mol::Molecule& mol,
                                           double scale, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Vec3> out;
  out.reserve(mol.size());
  for (const auto& a : mol.atoms()) {
    out.push_back(a.pos + geom::Vec3(rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale),
                                     rng.uniform(-scale, scale)));
  }
  return out;
}

void expect_bitwise_equal(const core::EvalResult& got,
                          const core::EnergyResult& want) {
  EXPECT_EQ(got.epol, want.epol);
  ASSERT_EQ(got.born.size(), want.born.size());
  for (std::size_t i = 0; i < got.born.size(); ++i)
    ASSERT_EQ(got.born[i], want.born[i]) << "atom " << i;
  EXPECT_EQ(got.work.born_exact, want.work.born_exact);
  EXPECT_EQ(got.work.born_approx, want.work.born_approx);
  EXPECT_EQ(got.work.born_visits, want.work.born_visits);
  EXPECT_EQ(got.work.push_atoms, want.work.push_atoms);
  EXPECT_EQ(got.work.push_visits, want.work.push_visits);
  EXPECT_EQ(got.work.epol_exact, want.work.epol_exact);
  EXPECT_EQ(got.work.epol_bins, want.work.epol_bins);
  EXPECT_EQ(got.work.epol_visits, want.work.epol_visits);
}

}  // namespace

// ---- equivalence sweep ------------------------------------------------------

struct SweepParams {
  std::size_t atoms;
  double eps_born;
  bool strict;
};

class PlanEquivalence : public ::testing::TestWithParam<SweepParams> {};

TEST_P(PlanEquivalence, CaptureReplayAndReuseMatchTraversalBitForBit) {
  const auto [atoms, eps_born, strict] = GetParam();
  const Problem p(atoms);
  core::EngineConfig config;
  config.approx.eps_born = eps_born;
  config.approx.strict_born_criterion = strict;

  GBEngine warm(p.molecule, p.surf, config);
  GBEngine cold(p.molecule, p.surf, config);  // traversal reference
  EvalScratch scratch;

  // First warm compute captures the plan; reference runs the traversal.
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.builds, 1u);

  // Same geometry again: full Born-result reuse, still bit-identical.
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 1u);

  // Small refit: the pair structure survives, validation passes, the
  // flat-list replay must equal re-traversing at the moved geometry.
  // (Jitter is kept tiny: even 1e-4 Å can flip a borderline admissibility
  // decision on larger problems, which validation would rightly treat as
  // drift — that path has its own test below.)
  const auto moved = jittered_positions(p.molecule, 1e-7, 17);
  warm.refit_atoms(moved);
  cold.refit_atoms(moved);
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.validations, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_drift, 0u);
  EXPECT_EQ(scratch.plan_cache.stats.replays, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanEquivalence,
    ::testing::Values(SweepParams{200, 0.9, false},
                      SweepParams{500, 0.9, false},
                      SweepParams{500, 0.3, false},
                      SweepParams{500, 2.0, false},
                      SweepParams{500, 0.9, true},
                      SweepParams{1200, 0.9, false}));

// ---- invalidation -----------------------------------------------------------

TEST(Plan, EpsBornChangeInvalidatesAndRecaptures) {
  const Problem p(500);
  GBEngine warm(p.molecule, p.surf);
  GBEngine cold(p.molecule, p.surf);
  EvalScratch scratch;

  (void)warm.compute(scratch);
  warm.approx().eps_born = 0.4;
  cold.approx().eps_born = 0.4;
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_params, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 2u);
  EXPECT_EQ(scratch.plan_cache.stats.replays, 0u);
}

TEST(Plan, RebuildInvalidatesTopology) {
  const Problem p(500);
  GBEngine warm(p.molecule, p.surf);
  GBEngine cold(p.molecule, p.surf);
  EvalScratch scratch;

  (void)warm.compute(scratch);
  const auto epoch_before = warm.topology_epoch();
  warm.rebuild_atoms(p.molecule);
  cold.rebuild_atoms(p.molecule);
  EXPECT_EQ(warm.topology_epoch(), epoch_before + 1);
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_topology, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 2u);
}

TEST(Plan, SwitchingEnginesInvalidates) {
  // One scratch serving two engines alternately: each switch is a key
  // miss (engine identity differs), results stay traversal-exact.
  const Problem p1(400, 5);
  const Problem p2(300, 6);
  GBEngine e1(p1.molecule, p1.surf);
  GBEngine e2(p2.molecule, p2.surf);
  GBEngine cold1(p1.molecule, p1.surf);
  GBEngine cold2(p2.molecule, p2.surf);
  EvalScratch scratch;

  (void)e1.compute(scratch);
  expect_bitwise_equal(e2.compute(scratch), cold2.compute());
  expect_bitwise_equal(e1.compute(scratch), cold1.compute());
  EXPECT_EQ(scratch.plan_cache.stats.builds, 3u);
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_topology, 2u);
}

TEST(Plan, LargeMoveDriftRecaptures) {
  // A big coordinate change flips admissibility decisions: validation
  // must catch it (drift), recapture, and still match the traversal.
  const Problem p(600);
  GBEngine warm(p.molecule, p.surf);
  GBEngine cold(p.molecule, p.surf);
  EvalScratch scratch;

  (void)warm.compute(scratch);
  const auto moved = jittered_positions(p.molecule, 8.0, 23);
  warm.refit_atoms(moved);
  cold.refit_atoms(moved);
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.validations, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_drift, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 2u);
}

TEST(Plan, ApproxMathTogglesBornCacheButNotPlan) {
  // approx_math changes arithmetic, not the partition: the plan key
  // still hits and the lists replay; only the Born-result cache misses.
  const Problem p(400);
  GBEngine warm(p.molecule, p.surf);
  GBEngine cold(p.molecule, p.surf);
  EvalScratch scratch;

  (void)warm.compute(scratch);
  warm.approx().approx_math = true;
  cold.approx().approx_math = true;
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.key_hits, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.replays, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 1u);
}

TEST(Plan, PlanModeOffNeverCaches) {
  const Problem p(300);
  core::EngineConfig config;
  config.approx.plan = PlanMode::Off;
  GBEngine warm(p.molecule, p.surf, config);
  GBEngine cold(p.molecule, p.surf, config);
  EvalScratch scratch;

  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  expect_bitwise_equal(warm.compute(scratch), cold.compute());
  EXPECT_EQ(scratch.plan_cache.stats.builds, 0u);
  EXPECT_EQ(scratch.plan_cache.stats.key_hits, 0u);
  EXPECT_EQ(scratch.plan_cache.stats.key_misses, 0u);
  EXPECT_EQ(scratch.plan_cache.plan.near_pairs(), 0u);
}

// ---- dual flavor ------------------------------------------------------------

TEST(Plan, DualFlavorCapturesAndReusesIndependently) {
  const Problem p(500);
  GBEngine warm(p.molecule, p.surf);
  GBEngine cold(p.molecule, p.surf);
  EvalScratch scratch;

  const auto warm1 = warm.compute_dual(scratch);
  const auto ref = cold.compute_dual();
  expect_bitwise_equal(warm1, ref);
  // Same flavor again: Born reuse.
  expect_bitwise_equal(warm.compute_dual(scratch), ref);
  EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 1u);
  // Flavor switch is a key miss (params-level invalidation).
  (void)warm.compute(scratch);
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_params, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 2u);
}

TEST(Plan, DualFlavorReplayMatchesTraversalAfterRefit) {
  const Problem p(500);
  GBEngine warm(p.molecule, p.surf);
  GBEngine cold(p.molecule, p.surf);
  EvalScratch scratch;

  (void)warm.compute_dual(scratch);
  const auto moved = jittered_positions(p.molecule, 1e-4, 31);
  warm.refit_atoms(moved);
  cold.refit_atoms(moved);
  expect_bitwise_equal(warm.compute_dual(scratch), cold.compute_dual());
  EXPECT_EQ(scratch.plan_cache.stats.replays, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_drift, 0u);
}

// ---- parallel replay --------------------------------------------------------

TEST(Plan, ReplayUnderSchedulerIsExactOnBornRadii) {
  // Replay writes every node_s slot / atom_s range from exactly one task,
  // so the Born radii are schedule-independent down to the bit (unlike
  // the traversal's atomic accumulation, which only promises near-equal).
  // This is also the TSan race check for the chunked parallel replay.
  const Problem p(800);
  GBEngine warm(p.molecule, p.surf);
  GBEngine cold(p.molecule, p.surf);
  EvalScratch scratch;

  (void)warm.compute(scratch);  // serial capture
  const auto moved = jittered_positions(p.molecule, 1e-7, 53);
  warm.refit_atoms(moved);
  cold.refit_atoms(moved);
  const auto serial_ref = cold.compute();

  ws::Scheduler sched(4);
  const auto par = warm.compute(scratch, &sched);  // replay under workers
  EXPECT_EQ(scratch.plan_cache.stats.replays, 1u);
  ASSERT_EQ(par.born.size(), serial_ref.born.size());
  for (std::size_t i = 0; i < par.born.size(); ++i)
    ASSERT_EQ(par.born[i], serial_ref.born[i]) << "atom " << i;
  // The Epol phase still accumulates atomically under the scheduler.
  EXPECT_NEAR(par.epol, serial_ref.epol, 1e-8 * std::abs(serial_ref.epol));

  // Born reuse under the scheduler: radii come straight from the cache.
  const auto reuse = warm.compute(scratch, &sched);
  EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 1u);
  for (std::size_t i = 0; i < reuse.born.size(); ++i)
    ASSERT_EQ(reuse.born[i], serial_ref.born[i]) << "atom " << i;
}

// ---- steady-state allocations ----------------------------------------------

TEST(Plan, ReplayAndReuseAreAllocationFree) {
  const Problem p(600);
  GBEngine engine(p.molecule, p.surf);
  EvalScratch scratch;

  (void)engine.compute(scratch);          // capture
  (void)engine.compute(scratch);          // born reuse
  engine.refit_atoms(jittered_positions(p.molecule, 1e-4, 41));
  (void)engine.compute(scratch);          // validate + replay + store
  const auto settled = scratch.allocation_events;

  for (int cycle = 0; cycle < 3; ++cycle) {
    engine.refit_atoms(
        jittered_positions(p.molecule, 1e-4, 42 + std::uint64_t(cycle)));
    (void)engine.compute(scratch);  // replay
    (void)engine.compute(scratch);  // born reuse
  }
  EXPECT_EQ(scratch.allocation_events, settled);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 1u);
  EXPECT_EQ(scratch.plan_cache.stats.replays, 4u);
  EXPECT_EQ(scratch.plan_cache.stats.born_reuses, 4u);
}

// ---- session surface --------------------------------------------------------

TEST(Plan, SessionExposesPlanStats) {
  const Problem p(400);
  core::ScoringSession session(p.molecule, p.surf);

  (void)session.evaluate();
  (void)session.evaluate();  // born reuse
  auto approx = session.engine().config().approx;
  approx.eps_born = 0.4;
  (void)session.evaluate_at(approx);  // params invalidation → recapture

  const perf::PlanCounters& stats = session.plan_stats();
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.born_reuses, 1u);
  EXPECT_EQ(stats.invalidated_params, 1u);
}

TEST(Plan, MetricsRegistryExportsPlanCounters) {
  perf::PlanCounters stats;
  stats.builds = 2;
  stats.replays = 5;
  stats.invalidated_drift = 1;
  trace::MetricsRegistry reg;
  reg.add_plan("", stats);
  EXPECT_EQ(reg.get_int("plan.builds"), 2u);
  EXPECT_EQ(reg.get_int("plan.replays"), 5u);
  EXPECT_EQ(reg.get_int("plan.invalidated.drift"), 1u);
  EXPECT_EQ(reg.get_int("plan.born_reuses"), 0u);
}

// ---- locality-aware execution (DESIGN.md §2.11) -----------------------------

TEST(Plan, LocalityReplayBitwiseMatchesBaselineAtEveryWorkerCount) {
  // The acceptance gate of the locality work: warm replay with
  // run-coalesced carving must produce bitwise-identical phase buffers
  // (node_s, atom_s, Born radii) to the locality-off carving — the PR-9
  // baseline — at every worker count. Epol is compared bitwise only at
  // one worker: the Epol phase folds per-range partials into the total
  // in completion order (atomic_add in approx_epol), so its last bits
  // are schedule-dependent whenever >1 worker runs — a pre-existing
  // property of the energy phase, not of plan replay. The plan path
  // itself must be (and is) exactly deterministic.
  const Problem p(800);
  core::EngineConfig on_cfg, off_cfg;
  on_cfg.approx.locality = true;
  off_cfg.approx.locality = false;

  const auto moved = jittered_positions(p.molecule, 1e-7, 29);
  for (int workers : {1, 2, 4}) {
    GBEngine on(p.molecule, p.surf, on_cfg);
    GBEngine off(p.molecule, p.surf, off_cfg);
    EvalScratch s_on, s_off;
    ws::Scheduler sched(workers);

    (void)on.compute(s_on, &sched);    // capture
    (void)off.compute(s_off, &sched);  // capture
    on.refit_atoms(moved);             // force a true replay
    off.refit_atoms(moved);
    const auto r_on = on.compute(s_on, &sched);
    const double epol_on = r_on.epol;
    const std::vector<double> born_on(r_on.born.begin(), r_on.born.end());
    const auto r_off = off.compute(s_off, &sched);
    EXPECT_EQ(s_on.plan_cache.stats.replays, 1u);
    EXPECT_EQ(s_off.plan_cache.stats.replays, 1u);
    ASSERT_EQ(born_on.size(), r_off.born.size());
    for (std::size_t i = 0; i < born_on.size(); ++i)
      ASSERT_EQ(born_on[i], r_off.born[i]) << "atom " << i;
    EXPECT_EQ(s_on.node_s, s_off.node_s) << workers << " workers";
    EXPECT_EQ(s_on.atom_s, s_off.atom_s) << workers << " workers";
    EXPECT_EQ(s_on.born_tree, s_off.born_tree) << workers << " workers";

    if (workers == 1) {
      EXPECT_EQ(epol_on, r_off.epol);
      GBEngine cold(p.molecule, p.surf, on_cfg);  // traversal reference
      cold.refit_atoms(moved);
      const auto c = cold.compute();
      EXPECT_EQ(epol_on, c.epol);
      for (std::size_t i = 0; i < born_on.size(); ++i)
        ASSERT_EQ(born_on[i], c.born[i]) << "atom " << i;
    }
  }
}

TEST(Plan, LocalityCarvingCoalescesRunsAndChunks) {
  const Problem p(1500);
  core::EngineConfig config;
  config.approx.locality = true;
  GBEngine warm(p.molecule, p.surf, config);
  EvalScratch scratch;
  (void)warm.compute(scratch);

  const core::InteractionPlan& plan = scratch.plan_cache.plan;
  const perf::LocalityCounters& l = plan.locality_stats();
  // Morton leaves abut, so streaming runs must actually coalesce owners…
  EXPECT_GT(l.run_owners, 0u);
  EXPECT_LT(l.runs, l.run_owners);
  EXPECT_GT(l.mean_run_length(), 1.0);
  // …and the carving must produce at most half the cost-only chunk count
  // (the bench gate, asserted here on a protein input).
  EXPECT_GT(l.baseline_chunks, 0u);
  EXPECT_LE(2 * l.chunks, l.baseline_chunks);
  EXPECT_EQ(l.chunks, plan.chunks());
  // Introspection shape: chunk bounds tile owner_order, runs tile it too,
  // and the atom partition is monotone from 0 to the atom count.
  ASSERT_FALSE(plan.chunk_offsets().empty());
  EXPECT_EQ(plan.chunk_offsets().front(), 0u);
  EXPECT_EQ(plan.chunk_offsets().back(), plan.owner_order().size());
  ASSERT_FALSE(plan.run_offsets().empty());
  EXPECT_EQ(plan.run_offsets().back(), plan.owner_order().size());
  const auto ab = plan.chunk_atom_begin();
  ASSERT_EQ(ab.size(), plan.chunks() + 1);
  EXPECT_EQ(ab.front(), 0u);
  EXPECT_EQ(ab.back(), p.molecule.size());
  for (std::size_t c = 1; c < ab.size(); ++c) EXPECT_LE(ab[c - 1], ab[c]);
}

TEST(Plan, LocalityOffKeepsCostSortedCarving) {
  const Problem p(1000);
  core::EngineConfig config;
  config.approx.locality = false;
  GBEngine warm(p.molecule, p.surf, config);
  EvalScratch scratch;
  (void)warm.compute(scratch);
  const core::InteractionPlan& plan = scratch.plan_cache.plan;
  const perf::LocalityCounters& l = plan.locality_stats();
  EXPECT_EQ(l.runs, 0u);             // no run detection off-path
  EXPECT_TRUE(plan.run_offsets().empty());
  EXPECT_TRUE(plan.chunk_atom_begin().empty());
  EXPECT_EQ(l.chunks, l.baseline_chunks);  // its own carving IS the baseline
  EXPECT_EQ(plan.prefetches_per_replay(), 0u);
}

TEST(Plan, LocalityKnobFlipRecapturesAsParamsInvalidation) {
  const Problem p(400);
  GBEngine warm(p.molecule, p.surf);  // locality defaults to on
  EvalScratch scratch;
  (void)warm.compute(scratch);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 1u);

  warm.approx().locality = false;
  (void)warm.compute(scratch);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 2u);
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_params, 1u);

  warm.approx().locality = true;
  (void)warm.compute(scratch);
  EXPECT_EQ(scratch.plan_cache.stats.builds, 3u);
  EXPECT_EQ(scratch.plan_cache.stats.invalidated_params, 2u);
}

TEST(Plan, MetricsRegistryExportsLocalityCounters) {
  perf::LocalityCounters l;
  l.runs = 4;
  l.run_owners = 12;
  l.chunks = 10;
  l.baseline_chunks = 25;
  l.prefetch_batches = 7;
  l.numa_touch_passes = 1;
  trace::MetricsRegistry reg;
  reg.add_locality("", l);
  EXPECT_EQ(reg.get_int("plan.locality.runs"), 4u);
  EXPECT_EQ(reg.get_int("plan.locality.run_owners"), 12u);
  EXPECT_EQ(reg.get_int("plan.locality.chunks"), 10u);
  EXPECT_EQ(reg.get_int("plan.locality.baseline_chunks"), 25u);
  EXPECT_EQ(reg.get_int("plan.locality.prefetch_batches"), 7u);
  EXPECT_EQ(reg.get_int("plan.locality.numa_touch_passes"), 1u);
  EXPECT_DOUBLE_EQ(reg.get_real("plan.locality.mean_run_length"), 3.0);
  trace::MetricsRegistry tiers;
  tiers.add_steal_tiers("", 5, 3, 2, 0);
  EXPECT_EQ(tiers.get_int("ws.steal.local"), 5u);
  EXPECT_EQ(tiers.get_int("ws.steal.socket"), 3u);
  EXPECT_EQ(tiers.get_int("ws.steal.remote"), 2u);
  EXPECT_EQ(tiers.get_int("ws.steal.offblock"), 0u);
}
