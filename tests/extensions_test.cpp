// Tests for the extension features: the legacy dual-tree traversal [6],
// the data-distribution variant (paper's future work), dynamic octree
// refitting [8], and external-Born-radius energy evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/baselines/descreening.hpp"
#include "octgb/core/data_distributed.hpp"
#include "octgb/core/dual_traversal.hpp"
#include "octgb/core/engine.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/core/session.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/octree/dynamic.hpp"
#include "octgb/surface/surface.hpp"
#include "octgb/util/rng.hpp"

using namespace octgb;
using core::GBEngine;

namespace {

struct Problem {
  mol::Molecule molecule;
  surface::Surface surf;
  explicit Problem(std::size_t atoms, std::uint64_t seed = 61)
      : molecule(mol::generate_protein({.target_atoms = atoms, .seed = seed})),
        surf(surface::build_surface(molecule, {.subdivision = 1})) {}
};

}  // namespace

// ---- dual-tree traversal ---------------------------------------------------

TEST(DualTraversal, MatchesNaiveForSmallEps) {
  const Problem p(400);
  const auto naive = core::naive_born_radii(p.molecule, p.surf);
  core::EngineConfig cfg;
  cfg.approx.eps_born = 0.05;
  GBEngine engine(p.molecule, p.surf, cfg);
  const auto result = engine.compute_dual();
  for (std::size_t i = 0; i < naive.size(); ++i)
    EXPECT_NEAR(result.born[i], naive[i], 0.02 * naive[i]) << "atom " << i;
}

TEST(DualTraversal, CloseToOneTreeAlgorithmAtDefaultEps) {
  const Problem p(800);
  GBEngine engine(p.molecule, p.surf);
  const auto one_tree = engine.compute();
  const auto dual = engine.compute_dual();
  EXPECT_NEAR(dual.epol, one_tree.epol, 0.01 * std::abs(one_tree.epol));
}

TEST(DualTraversal, ApproximatesAtInternalQNodes) {
  // The defining difference from the one-tree algorithm: Q-side
  // approximation can happen above the leaves, so the dual pass does
  // fewer (or equal) total interactions.
  const Problem p(2500);
  GBEngine engine(p.molecule, p.surf);
  const auto one_tree = engine.compute();
  const auto dual = engine.compute_dual();
  EXPECT_LE(dual.work.born_exact + dual.work.born_approx,
            one_tree.work.born_exact + one_tree.work.born_approx);
  EXPECT_GT(dual.work.born_approx, 0u);
}

TEST(DualTraversal, ParallelMatchesSerial) {
  const Problem p(600);
  GBEngine engine(p.molecule, p.surf);
  const auto serial = engine.compute_dual();
  ws::Scheduler sched(3);
  const auto parallel = engine.compute_dual(&sched);
  EXPECT_NEAR(parallel.epol, serial.epol, 1e-8 * std::abs(serial.epol));
}

TEST(DualTraversal, ErrorShrinksWithEps) {
  const Problem p(500);
  const auto naive_born = core::naive_born_radii(p.molecule, p.surf);
  const double naive_e = core::naive_epol(p.molecule, naive_born);
  double prev_err = 1e300;
  for (double eps : {2.0, 0.5, 0.05}) {
    core::EngineConfig cfg;
    cfg.approx.eps_born = eps;
    cfg.approx.eps_epol = 0.05;
    GBEngine engine(p.molecule, p.surf, cfg);
    const double err =
        std::abs(engine.compute_dual().epol - naive_e) / std::abs(naive_e);
    EXPECT_LE(err, prev_err + 1e-6) << "eps=" << eps;
    prev_err = err;
  }
}

// ---- data distribution --------------------------------------------------------

TEST(DataDistributed, EnergyMatchesReplicatedAlgorithm) {
  const Problem p(700);
  GBEngine engine(p.molecule, p.surf);
  const auto replicated = engine.compute();
  for (int ranks : {1, 2, 4, 8}) {
    const auto dd = core::run_data_distributed(engine, ranks);
    EXPECT_NEAR(dd.epol, replicated.epol, 1e-9 * std::abs(replicated.epol))
        << "ranks=" << ranks;
  }
}

TEST(DataDistributed, OwnedDataPartitionsTheProblem) {
  const Problem p(900);
  GBEngine engine(p.molecule, p.surf);
  const auto dd = core::run_data_distributed(engine, 4);
  std::size_t atoms = 0, qpoints = 0;
  for (const auto& r : dd.ranks) {
    atoms += r.owned_atoms;
    qpoints += r.owned_qpoints;
  }
  EXPECT_EQ(atoms, engine.num_atoms());
  EXPECT_EQ(qpoints, engine.qpoints_tree().num_points());
}

TEST(DataDistributed, PerRankMemoryBelowReplication) {
  // The point of distributing data: even with ghosts, the worst rank
  // holds less than a full replica (for enough ranks).
  const Problem p(3000);
  GBEngine engine(p.molecule, p.surf);
  const auto dd = core::run_data_distributed(engine, 8);
  EXPECT_LT(dd.max_rank_bytes(), dd.replicated_bytes_per_rank);
}

TEST(DataDistributed, GhostsShrinkAsRanksGrow) {
  // More ranks → smaller owned regions → each rank's near field is a
  // larger *fraction* of its data but smaller in absolute bytes than the
  // whole molecule.
  const Problem p(2000);
  GBEngine engine(p.molecule, p.surf);
  const auto dd2 = core::run_data_distributed(engine, 2);
  const auto dd8 = core::run_data_distributed(engine, 8);
  std::size_t worst2 = 0, worst8 = 0;
  for (const auto& r : dd2.ranks)
    worst2 = std::max(worst2, r.owned_bytes + r.ghost_bytes);
  for (const auto& r : dd8.ranks)
    worst8 = std::max(worst8, r.owned_bytes + r.ghost_bytes);
  EXPECT_LT(worst8, worst2);
}

TEST(DataDistributed, NearLeavesCoverNonFarRegions) {
  // Property: for every (Q leaf, T_A leaf) pair that fails the far test
  // at the leaf level, the T_A leaf must be in the collected near set.
  const Problem p(400);
  GBEngine engine(p.molecule, p.surf);
  const auto& ta = engine.atoms_tree();
  const auto& tq = engine.qpoints_tree();
  const auto& q_leaves = engine.q_leaves();
  const double eps = engine.config().approx.eps_born;
  const auto near =
      core::collect_near_ta_leaves(ta, tq, q_leaves, eps, false);
  std::vector<bool> in_near(ta.tree.nodes().size(), false);
  for (auto id : near) in_near[id] = true;
  const double threshold = 1.0 + eps;
  for (std::uint32_t q_id : q_leaves) {
    const auto& q = ta.tree.node(0);  // placate unused warnings
    (void)q;
    const auto& qn = tq.tree.node(q_id);
    for (std::uint32_t a_id : ta.tree.leaf_ids()) {
      const auto& an = ta.tree.node(a_id);
      const double d = geom::dist(an.centroid, qn.centroid);
      if (!core::born_far_enough(d, an.radius, qn.radius, threshold)) {
        EXPECT_TRUE(in_near[a_id])
            << "leaf " << a_id << " near q-leaf " << q_id
            << " missing from near set";
      }
    }
  }
}

// ---- dynamic octree -------------------------------------------------------------

TEST(DynamicOctree, RefitTracksSmallDisplacements) {
  util::Xoshiro256 rng(71);
  std::vector<geom::Vec3> pts(600);
  for (auto& v : pts)
    v = {rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)};
  octree::DynamicOctree dyn(pts);
  EXPECT_EQ(dyn.rebuilds(), 0u);

  // Jiggle by 0.05 Å — typical MD step scale.
  for (auto& v : pts)
    v += geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * 0.05;
  const bool rebuilt = dyn.update(pts);
  EXPECT_FALSE(rebuilt);
  EXPECT_EQ(dyn.refits(), 1u);
  EXPECT_TRUE(dyn.tree().validate());
}

TEST(DynamicOctree, RefitRadiiStillEncloseAllPoints) {
  util::Xoshiro256 rng(72);
  std::vector<geom::Vec3> pts(500);
  for (auto& v : pts)
    v = {rng.uniform(-15, 15), rng.uniform(-15, 15), rng.uniform(-15, 15)};
  octree::DynamicOctree dyn(pts);
  for (int step = 0; step < 5; ++step) {
    for (auto& v : pts)
      v += geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * 0.1;
    dyn.update(pts);
    EXPECT_TRUE(dyn.tree().validate()) << "step " << step;
  }
}

TEST(DynamicOctree, LargeMotionTriggersRebuild) {
  util::Xoshiro256 rng(73);
  std::vector<geom::Vec3> pts(400);
  for (auto& v : pts)
    v = {rng.uniform(-15, 15), rng.uniform(-15, 15), rng.uniform(-15, 15)};
  octree::DynamicOctree dyn(pts);
  // Blow the molecule apart: every leaf inflates far past the threshold.
  for (auto& v : pts) v = v * 4.0 + geom::Vec3{rng.normal() * 10, 0, 0};
  const bool rebuilt = dyn.update(pts);
  EXPECT_TRUE(rebuilt);
  EXPECT_EQ(dyn.rebuilds(), 1u);
  EXPECT_TRUE(dyn.tree().validate());
  EXPECT_LE(dyn.worst_leaf_inflation(), 1.0 + 1e-9);  // fresh build
}

TEST(DynamicOctree, RefittedTreeGivesSameEnergyAsRebuilt) {
  // The refit keeps admissibility sound: energies from a refitted tree
  // match a from-scratch build on the same coordinates to approximation
  // tolerance.
  const Problem base(500);
  std::vector<geom::Vec3> moved(base.molecule.size());
  util::Xoshiro256 rng(74);
  for (std::size_t i = 0; i < moved.size(); ++i)
    moved[i] = base.molecule.atom(i).pos +
               geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * 0.02;

  mol::Molecule moved_mol = base.molecule;
  for (std::size_t i = 0; i < moved.size(); ++i)
    moved_mol.atoms()[i].pos = moved[i];
  const auto moved_surf = surface::build_surface(moved_mol,
                                                 {.subdivision = 1});
  GBEngine rebuilt(moved_mol, moved_surf);
  const double e_rebuilt = rebuilt.compute().epol;

  // Refit path: same molecule/surface but tree topology from the original
  // coordinates.
  core::AtomsTree refit_ta = core::AtomsTree::build(base.molecule, {});
  refit_ta.tree.refit(moved);
  // Energies via the kernels directly (radii from the rebuilt engine,
  // isolating the tree-structure difference).
  perf::WorkCounters wc;
  const auto born = rebuilt.compute().born;
  std::vector<double> born_tree(born.size());
  const auto idx = refit_ta.tree.point_index();
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = born[idx[pos]];
  const auto ctx = core::EpolContext::build(refit_ta, born_tree, 0.9);
  const double e_refit =
      core::approx_epol(refit_ta, ctx, born_tree,
                        refit_ta.tree.leaf_ids(), 0.9, false, {}, wc);
  EXPECT_NEAR(e_refit, e_rebuilt, 0.01 * std::abs(e_rebuilt));
}

TEST(DynamicOctree, RefitThroughScoringSessionMatchesRebuilt) {
  // The same refit-tolerance contract, exercised through the stage-3
  // driver: ScoringSession::update() refits the engine's trees in place
  // (RefitMonitor deciding refit vs rebuild) and the re-evaluated energy
  // must match a cold engine built from the moved coordinates within the
  // documented ≤ 1 % bound.
  const Problem base(500);
  util::Xoshiro256 rng(74);
  std::vector<geom::Vec3> moved(base.molecule.size());
  for (std::size_t i = 0; i < moved.size(); ++i)
    moved[i] = base.molecule.atom(i).pos +
               geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * 0.02;
  mol::Molecule moved_mol = base.molecule;
  for (std::size_t i = 0; i < moved.size(); ++i)
    moved_mol.atoms()[i].pos = moved[i];
  const auto moved_surf = surface::build_surface(moved_mol,
                                                 {.subdivision = 1});

  core::ScoringSession session(base.molecule, base.surf);
  session.evaluate();
  session.update(moved, moved_surf);
  const double e_refit = session.evaluate().epol;

  GBEngine rebuilt(moved_mol, moved_surf);
  const double e_rebuilt = rebuilt.compute().epol;
  EXPECT_NEAR(e_refit, e_rebuilt, 0.01 * std::abs(e_rebuilt));
}

// ---- external Born radii ---------------------------------------------------------

TEST(EpolWithRadii, MatchesNaiveEpolOnSameRadii) {
  const Problem p(500);
  GBEngine engine(p.molecule, p.surf);
  // Use HCT radii — a different GB model feeding the same octree kernel.
  std::vector<geom::Vec3> centers(p.molecule.size());
  for (std::size_t i = 0; i < centers.size(); ++i)
    centers[i] = p.molecule.atom(i).pos;
  const auto nb = octree::NbList::build(centers, {.cutoff = 20.0,
                                                  .max_bytes = 0});
  const auto hct = baselines::pairwise_born_radii(p.molecule, nb,
                                                  baselines::BornModel::HCT);
  perf::WorkCounters wc;
  const double octree_e = engine.epol_with_radii(hct, wc);
  const double naive_e = core::naive_epol(p.molecule, hct);
  EXPECT_NEAR(octree_e, naive_e, 0.01 * std::abs(naive_e));
}

TEST(EpolWithRadii, UniformRadiiClosedFormCrossCheck) {
  // All radii equal R: the self-energy part is exactly −τ/2 Σq²/R.
  const Problem p(300);
  GBEngine engine(p.molecule, p.surf);
  std::vector<double> radii(p.molecule.size(), 3.0);
  perf::WorkCounters wc;
  const double octree_e = engine.epol_with_radii(radii, wc);
  const double naive_e = core::naive_epol(p.molecule, radii);
  EXPECT_NEAR(octree_e, naive_e, 0.01 * std::abs(naive_e));
}
