// Tests for the in-process message-passing runtime.

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "octgb/mpp/mpp.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"

using octgb::mpp::Comm;
using octgb::mpp::Runtime;
using octgb::mpp::Topology;

namespace {

Runtime::Options opts(int ranks, int ranks_per_node = 12) {
  Runtime::Options o;
  o.ranks = ranks;
  o.topology.ranks_per_node = ranks_per_node;
  return o;
}

}  // namespace

TEST(Topology, NodeMapping) {
  Topology t{12};
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(11), 0);
  EXPECT_EQ(t.node_of(12), 1);
  EXPECT_TRUE(t.same_node(3, 11));
  EXPECT_FALSE(t.same_node(11, 12));
}

TEST(Topology, RanksNotDivisibleByNodeSize) {
  // 7 ranks on 5-per-node: the last node is only partially filled — the
  // mapping must not round, truncate to zero nodes, or mis-pair the tail.
  Topology t{5};
  EXPECT_EQ(t.node_of(4), 0);
  EXPECT_EQ(t.node_of(5), 1);
  EXPECT_EQ(t.node_of(6), 1);
  EXPECT_TRUE(t.same_node(5, 6));
  EXPECT_FALSE(t.same_node(4, 5));
}

TEST(Topology, SingleRankNodesAreAllCrossNode) {
  // ranks_per_node = 1: every rank is its own node (pure TCP for the
  // out-of-process transport), and no distinct pair shares a node.
  Topology t{1};
  for (int r = 0; r < 4; ++r) EXPECT_EQ(t.node_of(r), r);
  EXPECT_FALSE(t.same_node(0, 1));
  EXPECT_TRUE(t.same_node(2, 2));  // a rank shares a node with itself
}

TEST(Topology, NodeLargerThanJobHoldsAllRanks) {
  // ranks_per_node exceeding the job size: one node, all pairs intra-node.
  Topology t{64};
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_TRUE(t.same_node(0, 7));
}

TEST(Mpp, CommStatusNamesRoundTrip) {
  using octgb::mpp::CommStatus;
  using octgb::mpp::comm_status_from_name;
  using octgb::mpp::comm_status_name;
  for (const CommStatus s :
       {CommStatus::Timeout, CommStatus::PeerDead, CommStatus::ChecksumMismatch,
        CommStatus::ConnectionLost}) {
    const auto back = comm_status_from_name(comm_status_name(s));
    ASSERT_TRUE(back.has_value()) << comm_status_name(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_STREQ(comm_status_name(CommStatus::ConnectionLost),
               "connection-lost");
  EXPECT_FALSE(comm_status_from_name("segfault").has_value());
  EXPECT_FALSE(comm_status_from_name("").has_value());
}

TEST(Mpp, SingleRankRunsTrivially) {
  int visits = 0;
  Runtime::run(opts(1), [&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Mpp, PointToPointRoundTrip) {
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 7, 42.5);
      EXPECT_DOUBLE_EQ(c.recv_value<double>(1, 8), 43.5);
    } else {
      EXPECT_DOUBLE_EQ(c.recv_value<double>(0, 7), 42.5);
      c.send_value(0, 8, 43.5);
    }
  });
}

TEST(Mpp, TagMatchingOutOfOrder) {
  // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 2, 200);
      c.send_value(1, 1, 100);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 1), 100);
      EXPECT_EQ(c.recv_value<int>(0, 2), 200);
    }
  });
}

TEST(Mpp, SendToSelfIsRejected) {
  EXPECT_THROW(Runtime::run(opts(1),
                            [](Comm& c) { c.send_value(0, 0, 1); }),
               octgb::util::CheckError);
}

TEST(Mpp, MessageSizeMismatchIsRejected) {
  EXPECT_THROW(Runtime::run(opts(2),
                            [](Comm& c) {
                              if (c.rank() == 0) {
                                c.send_value<double>(1, 0, 1.0);
                              } else {
                                (void)c.recv_value<int>(0, 0);
                              }
                            }),
               octgb::util::CheckError);
}

TEST(Mpp, RankFailurePropagatesWithoutDeadlock) {
  // Rank 1 throws while rank 0 blocks in recv: the abort flag must wake
  // rank 0 and the first error must be rethrown.
  EXPECT_THROW(
      Runtime::run(opts(2),
                   [](Comm& c) {
                     if (c.rank() == 0) {
                       (void)c.recv_value<int>(1, 0);  // never arrives
                     } else {
                       throw std::runtime_error("rank 1 exploded");
                     }
                   }),
      std::runtime_error);
}

class MppCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MppCollectives, BarrierCompletes) {
  Runtime::run(opts(GetParam()), [](Comm& c) { c.barrier(); });
}

TEST_P(MppCollectives, BcastFromEveryRoot) {
  const int P = GetParam();
  for (int root = 0; root < P; ++root) {
    Runtime::run(opts(P), [root](Comm& c) {
      std::vector<double> data(5, c.rank() == root ? 3.25 : 0.0);
      c.bcast(std::span<double>(data), root);
      for (double v : data) EXPECT_DOUBLE_EQ(v, 3.25);
    });
  }
}

TEST_P(MppCollectives, AllreduceSumMatchesSerialReference) {
  const int P = GetParam();
  constexpr int kLen = 37;
  // Reference: per-rank values are deterministic functions of (rank, i).
  std::vector<double> expected(kLen, 0.0);
  for (int r = 0; r < P; ++r)
    for (int i = 0; i < kLen; ++i) expected[i] += r * 1000.0 + i;

  Runtime::run(opts(P), [&](Comm& c) {
    std::vector<double> mine(kLen);
    for (int i = 0; i < kLen; ++i) mine[i] = c.rank() * 1000.0 + i;
    c.allreduce_sum(std::span<double>(mine));
    for (int i = 0; i < kLen; ++i) EXPECT_DOUBLE_EQ(mine[i], expected[i]);
  });
}

TEST_P(MppCollectives, ScalarAllreduceVariants) {
  const int P = GetParam();
  Runtime::run(opts(P), [P](Comm& c) {
    const double r = static_cast<double>(c.rank());
    EXPECT_DOUBLE_EQ(c.allreduce_sum(r), P * (P - 1) / 2.0);
    EXPECT_DOUBLE_EQ(c.allreduce_min(r + 5.0), 5.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(r), static_cast<double>(P - 1));
    EXPECT_EQ(c.allreduce_sum(std::uint64_t{1}),
              static_cast<std::uint64_t>(P));
  });
}

TEST_P(MppCollectives, ReduceSumOntoNonzeroRoot) {
  const int P = GetParam();
  const int root = P - 1;
  Runtime::run(opts(P), [&](Comm& c) {
    std::vector<double> v(3, 1.0);
    c.reduce_sum(std::span<double>(v), root);
    if (c.rank() == root) {
      for (double x : v) EXPECT_DOUBLE_EQ(x, static_cast<double>(P));
    }
  });
}

TEST_P(MppCollectives, AllgathervConcatenatesInRankOrder) {
  const int P = GetParam();
  Runtime::run(opts(P), [](Comm& c) {
    // Rank r contributes r+1 values, all equal to r.
    std::vector<int> mine(c.rank() + 1, c.rank());
    const auto all = c.allgatherv(std::span<const int>(mine));
    std::size_t pos = 0;
    for (int r = 0; r < c.size(); ++r) {
      for (int k = 0; k <= r; ++k) {
        ASSERT_LT(pos, all.size());
        EXPECT_EQ(all[pos++], r);
      }
    }
    EXPECT_EQ(pos, all.size());
  });
}

TEST_P(MppCollectives, GathervHandlesEmptyContributions) {
  const int P = GetParam();
  Runtime::run(opts(P), [](Comm& c) {
    std::vector<double> mine;
    if (c.rank() % 2 == 0) mine.assign(2, static_cast<double>(c.rank()));
    const auto all = c.gatherv(std::span<const double>(mine), 0);
    if (c.rank() == 0) {
      std::size_t expected = 0;
      for (int r = 0; r < c.size(); r += 2) expected += 2;
      EXPECT_EQ(all.size(), expected);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MppCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13));

TEST(Mpp, TrafficAccountingClassifiesIntraVsInterNode) {
  // 4 ranks, 2 per node: 0,1 on node 0; 2,3 on node 1.
  auto counters = Runtime::run(opts(4, 2), [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 0, 1.0);  // intra-node
      c.send_value(2, 0, 1.0);  // inter-node
    }
    if (c.rank() == 1) (void)c.recv_value<double>(0, 0);
    if (c.rank() == 2) (void)c.recv_value<double>(0, 0);
  });
  EXPECT_EQ(counters[0].messages_intranode, 1u);
  EXPECT_EQ(counters[0].messages_internode, 1u);
  EXPECT_EQ(counters[0].bytes_intranode, sizeof(double));
  EXPECT_EQ(counters[0].bytes_internode, sizeof(double));
  EXPECT_EQ(counters[1].messages_intranode + counters[1].messages_internode,
            0u);
}

TEST(Mpp, CollectiveCountsIncrease) {
  auto counters = Runtime::run(opts(3), [](Comm& c) {
    c.barrier();
    double v = 1.0;
    std::span<double> s(&v, 1);
    c.allreduce_sum(s);
  });
  for (const auto& cc : counters) {
    EXPECT_GE(cc.collectives, 2u);  // barrier counts reduce+bcast
  }
}

TEST(Mpp, ManyRanksStress) {
  // 32 ranks exchanging a ring of messages plus collectives.
  Runtime::run(opts(32, 12), [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    if (c.rank() % 2 == 0) {
      c.send_value(next, 1, c.rank());
      EXPECT_EQ(c.recv_value<int>(prev, 1), prev);
    } else {
      EXPECT_EQ(c.recv_value<int>(prev, 1), prev);
      c.send_value(next, 1, c.rank());
    }
    const double total = c.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(total, 32.0);
  });
}

// ---- nonblocking / combined p2p ---------------------------------------------

TEST(MppNonblocking, IrecvWaitDeliversMessage) {
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      double buf = 0.0;
      auto req = c.irecv(1, 5, std::span<double>(&buf, 1));
      EXPECT_TRUE(req.valid());
      c.wait(req);
      EXPECT_FALSE(req.valid());
      EXPECT_DOUBLE_EQ(buf, 2.5);
    } else {
      c.send_value(0, 5, 2.5);
    }
  });
}

TEST(MppNonblocking, TestReportsArrivalWithoutConsuming) {
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      int buf = 0;
      auto req = c.irecv(1, 9, std::span<int>(&buf, 1));
      // Synchronize so the message is definitely in the mailbox.
      c.barrier();
      EXPECT_TRUE(c.test(req));
      EXPECT_TRUE(c.test(req));  // not consumed
      c.wait(req);
      EXPECT_EQ(buf, 77);
    } else {
      c.send_value(0, 9, 77);
      c.barrier();
    }
  });
}

TEST(MppNonblocking, OverlapComputeWithPendingReceive) {
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> buf(64, 0.0);
      auto req = c.irecv(1, 3, std::span<double>(buf));
      // "Compute" while the message is (possibly) in flight.
      double acc = 0.0;
      for (int i = 0; i < 1000; ++i) acc += i * 0.5;
      c.wait(req);
      EXPECT_DOUBLE_EQ(buf[63], 63.0);
      EXPECT_GT(acc, 0.0);
    } else {
      std::vector<double> out(64);
      for (int i = 0; i < 64; ++i) out[i] = i;
      c.send(0, 3, std::span<const double>(out));
    }
  });
}

TEST(MppSendrecv, RingExchangeDoesNotDeadlock) {
  // Every rank sends right and receives from the left simultaneously —
  // the pattern blocking send/recv orderings must be careful with.
  Runtime::run(opts(5), [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    const double mine = 100.0 + c.rank();
    double got = 0.0;
    c.sendrecv(next, 4, std::span<const double>(&mine, 1), prev, 4,
               std::span<double>(&got, 1));
    EXPECT_DOUBLE_EQ(got, 100.0 + prev);
  });
}

TEST(MppSendrecv, PairwiseSwap) {
  Runtime::run(opts(2), [](Comm& c) {
    const int peer = 1 - c.rank();
    std::vector<int> mine(3, c.rank()), theirs(3, -1);
    c.sendrecv(peer, 8, std::span<const int>(mine), peer, 8,
               std::span<int>(theirs));
    for (int v : theirs) EXPECT_EQ(v, peer);
  });
}

// ---- alltoallv / scan ---------------------------------------------------------

TEST(MppAlltoall, PersonalizedExchange) {
  Runtime::run(opts(4), [](Comm& c) {
    // Rank r sends r*10+dest repeated (dest+1) times to each dest.
    std::vector<std::vector<int>> out(c.size());
    for (int dest = 0; dest < c.size(); ++dest)
      out[dest].assign(dest + 1, c.rank() * 10 + dest);
    const auto in = c.alltoallv(out);
    ASSERT_EQ(in.size(), static_cast<std::size_t>(c.size()));
    for (int src = 0; src < c.size(); ++src) {
      ASSERT_EQ(in[src].size(), static_cast<std::size_t>(c.rank() + 1))
          << "src " << src;
      for (int v : in[src]) EXPECT_EQ(v, src * 10 + c.rank());
    }
  });
}

TEST(MppAlltoall, EmptyBucketsAreFine) {
  Runtime::run(opts(3), [](Comm& c) {
    std::vector<std::vector<double>> out(c.size());  // all empty
    const auto in = c.alltoallv(out);
    for (const auto& bucket : in) EXPECT_TRUE(bucket.empty());
  });
}

TEST(MppScan, InclusivePrefixSum) {
  Runtime::run(opts(6), [](Comm& c) {
    const double prefix = c.scan_sum(static_cast<double>(c.rank() + 1));
    // Σ_{k=1..rank+1} k
    const double expected = (c.rank() + 1) * (c.rank() + 2) / 2.0;
    EXPECT_DOUBLE_EQ(prefix, expected);
  });
}

TEST(MppScan, SingleRankIsIdentity) {
  Runtime::run(opts(1), [](Comm& c) {
    EXPECT_DOUBLE_EQ(c.scan_sum(7.5), 7.5);
  });
}

// ---- randomized collective property sweep -------------------------------------

TEST(MppProperty, RandomAllreducePayloadsMatchSerialSums) {
  // Property: for random rank counts, payload lengths and values, the
  // allreduce equals the serial fold.
  octgb::util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const int P = 1 + static_cast<int>(rng.below(9));
    const int len = 1 + static_cast<int>(rng.below(257));
    // Deterministic per-(rank, index) values so every rank can recompute
    // the expectation independently.
    const std::uint64_t seed = rng();
    std::vector<double> expected(len, 0.0);
    for (int r = 0; r < P; ++r) {
      octgb::util::Xoshiro256 g(seed + r);
      for (int i = 0; i < len; ++i) expected[i] += g.uniform(-1, 1);
    }
    Runtime::run(opts(P), [&](Comm& c) {
      octgb::util::Xoshiro256 g(seed + c.rank());
      std::vector<double> mine(len);
      for (int i = 0; i < len; ++i) mine[i] = g.uniform(-1, 1);
      c.allreduce_sum(std::span<double>(mine));
      for (int i = 0; i < len; ++i)
        ASSERT_NEAR(mine[i], expected[i], 1e-12)
            << "trial " << trial << " P=" << P << " i=" << i;
    });
  }
}

// ---- failure semantics --------------------------------------------------------

TEST(MppFailure, TagMismatchTimesOutWithDescriptiveError) {
  // A receive on the wrong tag must not hang: with a deadline it returns
  // Timeout naming the (src, tag, bytes) triple it was waiting for.
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 7, 1.25);
      c.barrier();
    } else {
      double v = 0.0;
      auto r = c.recv_bytes_deadline(0, 99, &v, sizeof(v), 10.0);
      ASSERT_FALSE(r.has_value());
      EXPECT_EQ(r.error().status, octgb::mpp::CommStatus::Timeout);
      EXPECT_EQ(r.error().src, 0);
      EXPECT_EQ(r.error().tag, 99);
      EXPECT_EQ(r.error().bytes, sizeof(double));
      const std::string what = r.error().describe();
      EXPECT_NE(what.find("src=0"), std::string::npos) << what;
      EXPECT_NE(what.find("tag=99"), std::string::npos) << what;
      c.barrier();
      // Consume the real message so nothing leaks into later asserts.
      EXPECT_DOUBLE_EQ(c.recv_value<double>(0, 7), 1.25);
    }
  });
}

TEST(MppFailure, DefaultDeadlineTurnsBlockingRecvIntoException) {
  // The hard-hang footgun: without a deadline this recv would block
  // forever. Options::default_deadline_ms converts it into a
  // CommException carrying the triple.
  auto o = opts(2);
  o.default_deadline_ms = 10.0;
  Runtime::run(o, [](Comm& c) {
    if (c.rank() == 1) {
      try {
        (void)c.recv_value<int>(0, 42);  // never sent
        FAIL() << "recv of a never-sent message must throw";
      } catch (const octgb::mpp::CommException& e) {
        EXPECT_EQ(e.error().status, octgb::mpp::CommStatus::Timeout);
        EXPECT_EQ(e.error().src, 0);
        EXPECT_EQ(e.error().tag, 42);
        EXPECT_NE(std::string(e.what()).find("tag=42"), std::string::npos);
      }
    }
  });
}

TEST(MppFailure, WaitDeadlineKeepsRequestValidOnTimeout) {
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      int buf = 0;
      auto req = c.irecv(1, 6, std::span<int>(&buf, 1));
      auto r = c.wait_deadline(req, 5.0);
      ASSERT_FALSE(r.has_value());  // rank 1 waits for the barrier
      EXPECT_TRUE(req.valid());     // timeout does not consume the request
      c.barrier();
      c.wait(req);                  // now it arrives
      EXPECT_FALSE(req.valid());
      EXPECT_EQ(buf, 31);
    } else {
      c.barrier();
      c.send_value(0, 6, 31);
    }
  });
}

TEST(MppFailure, DoubleWaitIsAContractViolation) {
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      int buf = 0;
      auto req = c.irecv(1, 2, std::span<int>(&buf, 1));
      c.wait(req);
      EXPECT_EQ(buf, 5);
      EXPECT_THROW(c.wait(req), octgb::util::CheckError);
    } else {
      c.send_value(0, 2, 5);
    }
  });
}

TEST(MppFailure, RetryRecoversFromLateMessage) {
  Runtime::run(opts(2), [](Comm& c) {
    if (c.rank() == 0) {
      // First attempt's deadline expires; a later attempt succeeds once
      // rank 1 gets around to sending. The handshake pins the ordering:
      // rank 1 only starts its delay once rank 0 is provably about to
      // enter the retry loop, so the 2 ms first deadline expires before
      // the 30 ms-late message even under a loaded scheduler.
      c.send_value(1, 2, 1);
      double v = 0.0;
      octgb::mpp::RetryPolicy policy;
      policy.attempts = 50;
      policy.deadline_ms = 2.0;
      policy.backoff = 1.5;
      auto r = c.recv_bytes_retry(1, 3, &v, sizeof(v), policy);
      ASSERT_TRUE(r.has_value());
      EXPECT_DOUBLE_EQ(v, 9.75);
      EXPECT_GE(c.retries(), 1u);
    } else {
      (void)c.recv_value<int>(0, 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      c.send_value(0, 3, 9.75);
    }
  });
}

TEST(MppFailure, DetectorReportsEveryoneAliveWithoutFaults) {
  Runtime::run(opts(3), [](Comm& c) {
    for (int r = 0; r < c.size(); ++r) EXPECT_TRUE(c.is_alive(r));
    EXPECT_EQ(c.alive_ranks().size(), 3u);
    EXPECT_EQ(c.failure_epoch(), 0);
    c.barrier();
    EXPECT_GE(c.heartbeat_of(c.rank()), 1u);  // barrier bumped it
  });
}

TEST(MppProperty, BackToBackCollectivesKeepTagIsolation) {
  // Many collectives in a row must never cross-match (the sequence-number
  // tag scheme under test).
  Runtime::run(opts(5), [](Comm& c) {
    for (int round = 0; round < 25; ++round) {
      double v = c.rank() + round * 100.0;
      std::span<double> s(&v, 1);
      c.allreduce_sum(s);
      const double expected = 10.0 + 5 * round * 100.0;  // Σranks + P·round·100
      ASSERT_DOUBLE_EQ(v, expected) << "round " << round;
      c.barrier();
    }
  });
}
