// Tests for the out-of-process transport (DESIGN.md §2.10): the wire
// frame codec (including the mid-frame socket-cut truncation sweep), the
// SPSC shared-memory rings and segment, reconnect backoff, the file-backed
// checkpoint store, and — in the ProcJob tests — whole fork/exec jobs
// under mpp::launch::run_job with real SIGKILLs.
//
// This binary is its own rank worker: run_job re-execs /proc/self/exe with
// `--worker-child <mode>` and the rendezvous environment, and main()
// dispatches into worker_child_main before gtest ever sees the argv. The
// ProcJob tests therefore need no external binary and keep the kill gate
// inside plain ctest. (CI's TSan job excludes `ProcJob.*` — fork/exec of
// an instrumented binary is slow and noisy there; the unit tests cover the
// transport logic under TSan.)

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "octgb/octgb.hpp"

using namespace octgb;
using mpp::CommStatus;
namespace wire = mpp::wire;

namespace {

std::string temp_dir() {
  char templ[] = "/tmp/octgb-proc-test.XXXXXX";
  OCTGB_CHECK(::mkdtemp(templ) != nullptr);
  return templ;
}

void remove_tree(const std::string& dir) {
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

std::vector<std::uint8_t> make_frame(int src, int tag,
                                     const std::string& payload) {
  std::vector<std::uint8_t> out;
  wire::encode_frame(src, tag, payload.data(), payload.size(), out);
  return out;
}

// --- the worker side of the ProcJob tests ----------------------------------

/// Deterministic small problem shared by the in-thread reference and every
/// worker process (the replicated data of the paper's processes).
core::GBEngine make_worker_engine() {
  auto molecule = mol::generate_protein({.target_atoms = 150, .seed = 7});
  surface::SurfaceParams sp;
  sp.subdivision = 1;
  const auto surf = surface::build_surface(molecule, sp);
  return core::GBEngine(molecule, surf, core::EngineConfig{});
}

int worker_child_main(const std::string& mode) {
  auto env = mpp::proc::ProcessRuntime::from_env();
  if (!env) {
    std::fprintf(stderr, "worker child without rendezvous environment\n");
    return 2;
  }
  double epol = 0.0;
  mpp::proc::ProcessRuntime::run(*env, [&](mpp::Comm& comm) {
    if (mode == "pingpong") {
      const int me = comm.rank();
      for (int dst = 0; dst < comm.size(); ++dst)
        if (dst != me) comm.send_value(dst, 3, me);
      int sum = me;
      for (int src = 0; src < comm.size(); ++src)
        if (src != me) sum += comm.recv_value<int>(src, 3);
      OCTGB_CHECK(sum == comm.size() * (comm.size() - 1) / 2);
      epol = comm.allreduce_sum(static_cast<double>(sum));
      return;
    }
    OCTGB_CHECK_MSG(mode == "elastic", "unknown worker mode " << mode);
    const core::GBEngine engine = make_worker_engine();
    core::ElasticConfig cfg;
    cfg.hybrid.ranks = env->size;
    cfg.hybrid.topology = comm.topology();
    core::CheckpointStore store(env->dir + "/ckpt");
    epol = core::run_elastic_rank(engine, cfg, comm, store).epol;
  });
  std::uint64_t bits = 0;
  std::memcpy(&bits, &epol, sizeof(bits));
  char text[64];
  std::snprintf(text, sizeof(text), "%016llx\n",
                static_cast<unsigned long long>(bits));
  OCTGB_CHECK(util::io::write_file_atomic(
      env->dir + "/epol." + std::to_string(env->rank), text));
  return 0;
}

mpp::launch::JobSpec self_job(int ranks, const std::string& mode) {
  mpp::launch::JobSpec spec;
  spec.ranks = ranks;
  spec.topology.ranks_per_node = 2;
  spec.command = {"/proc/self/exe", "--worker-child", mode};
  spec.timeout_ms = 120000.0;
  return spec;
}

std::optional<std::uint64_t> epol_bits(const std::string& dir, int rank) {
  std::string text;
  if (!util::io::read_file(dir + "/epol." + std::to_string(rank), text))
    return std::nullopt;
  return std::strtoull(text.c_str(), nullptr, 16);
}

}  // namespace

// --- wire frame codec -------------------------------------------------------

TEST(Wire, EncodeDecodeRoundTrip) {
  const auto frame = make_frame(3, 42, "polarization");
  const auto decoded = wire::decode_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().src, 3);
  EXPECT_EQ(decoded.value().tag, 42);
  EXPECT_EQ(std::string(decoded.value().payload.begin(),
                        decoded.value().payload.end()),
            "polarization");
}

TEST(Wire, EmptyPayloadRoundTrips) {
  const auto frame = make_frame(0, -2, "");
  const auto decoded = wire::decode_frame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded.value().payload.empty());
}

TEST(Wire, EveryFlippedPayloadBitFailsTheCrc) {
  const std::string payload = "epol";
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    auto frame = make_frame(1, 9, payload);
    frame[sizeof(wire::FrameHeader) + bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    const auto decoded = wire::decode_frame(frame.data(), frame.size());
    ASSERT_FALSE(decoded.has_value()) << "bit " << bit;
    EXPECT_EQ(decoded.error(), CommStatus::ChecksumMismatch);
  }
}

TEST(Wire, TruncationAtEveryByteIsConnectionLost) {
  const auto frame = make_frame(2, 7, "truncated-stream");
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto decoded = wire::decode_frame(frame.data(), len);
    ASSERT_FALSE(decoded.has_value()) << "len " << len;
    EXPECT_EQ(decoded.error(), CommStatus::ConnectionLost);
  }
}

TEST(Wire, ImplausiblePayloadLengthIsConnectionLost) {
  auto frame = make_frame(0, 1, "x");
  wire::FrameHeader h;
  std::memcpy(&h, frame.data(), sizeof(h));
  h.payload_bytes = wire::kMaxFramePayload + 1;
  std::memcpy(frame.data(), &h, sizeof(h));
  const auto decoded = wire::decode_frame(frame.data(), frame.size());
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error(), CommStatus::ConnectionLost);
}

TEST(Wire, SocketRoundTripDeliversFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "over-the-wire";
  ASSERT_TRUE(
      wire::write_frame_fd(fds[0], 5, 11, payload.data(), payload.size()));
  ::close(fds[0]);
  const auto frame = wire::read_frame_fd(fds[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame.value().src, 5);
  EXPECT_EQ(frame.value().tag, 11);
  EXPECT_EQ(std::string(frame.value().payload.begin(),
                        frame.value().payload.end()),
            payload);
  // The peer closed after its one frame: the next read is ConnectionLost.
  const auto eof = wire::read_frame_fd(fds[1]);
  ASSERT_FALSE(eof.has_value());
  EXPECT_EQ(eof.error(), CommStatus::ConnectionLost);
  ::close(fds[1]);
}

TEST(Wire, MidFrameSocketCutSweepIsConnectionLost) {
  // The satellite extension of the PR-4 truncation sweep to the socket
  // path: a connection cut after ANY proper prefix of a frame — including
  // inside the header — must surface as ConnectionLost, never as a hang,
  // a short struct, or UB.
  const auto frame = make_frame(1, 13, "cut-mid-frame");
  for (std::size_t len = 0; len < frame.size(); ++len) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(util::io::write_exact(fds[0], frame.data(), len).has_value());
    ::close(fds[0]);  // the cut
    const auto decoded = wire::read_frame_fd(fds[1]);
    ASSERT_FALSE(decoded.has_value()) << "cut after " << len << " bytes";
    EXPECT_EQ(decoded.error(), CommStatus::ConnectionLost);
    ::close(fds[1]);
  }
}

TEST(Wire, CorruptPayloadOverSocketIsChecksumMismatch) {
  auto frame = make_frame(1, 13, "bitrot");
  frame[sizeof(wire::FrameHeader)] ^= 0x40;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(
      util::io::write_exact(fds[0], frame.data(), frame.size()).has_value());
  ::close(fds[0]);
  const auto decoded = wire::read_frame_fd(fds[1]);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error(), CommStatus::ChecksumMismatch);
  ::close(fds[1]);
}

// --- shm rings and segment --------------------------------------------------

namespace {

struct SegmentFixture {
  std::string dir = temp_dir();
  mpp::shm::Segment seg;

  explicit SegmentFixture(int ranks, int ranks_per_node,
                          std::uint64_t ring_bytes = 4096) {
    mpp::shm::Segment::Options o;
    o.ranks = ranks;
    o.topology.ranks_per_node = ranks_per_node;
    o.ring_bytes = ring_bytes;
    seg = mpp::shm::Segment::create(dir + "/shm", o);
  }
  ~SegmentFixture() { remove_tree(dir); }
};

}  // namespace

TEST(ShmRing, PushPopRoundTrip) {
  SegmentFixture f(2, 2);
  mpp::shm::Ring out = f.seg.ring(0, 1);
  ASSERT_TRUE(out.valid());
  const std::string msg = "ring-payload";
  EXPECT_EQ(out.try_push(msg.data(), msg.size()), msg.size());
  char buf[64] = {};
  EXPECT_EQ(out.try_pop(buf, sizeof(buf)), msg.size());
  EXPECT_EQ(std::string(buf, msg.size()), msg);
  EXPECT_EQ(out.try_pop(buf, sizeof(buf)), 0u);  // drained
}

TEST(ShmRing, PartialPushWhenNearlyFullAndWrapAround) {
  SegmentFixture f(2, 2, /*ring_bytes=*/4096);
  mpp::shm::Ring ring = f.seg.ring(0, 1);
  std::vector<std::uint8_t> chunk(3072, 0xAB);
  ASSERT_EQ(ring.try_push(chunk.data(), chunk.size()), chunk.size());
  // Only 1024 bytes left: the push is partial, not blocking, not failing.
  EXPECT_EQ(ring.try_push(chunk.data(), chunk.size()), 1024u);
  std::vector<std::uint8_t> sink(4096);
  EXPECT_EQ(ring.try_pop(sink.data(), sink.size()), 4096u);
  // Cursors are now mid-buffer: the next push/pop pair must wrap cleanly.
  std::vector<std::uint8_t> pattern(2048);
  for (std::size_t i = 0; i < pattern.size(); ++i)
    pattern[i] = static_cast<std::uint8_t>(i * 7 + 1);
  ASSERT_EQ(ring.try_push(pattern.data(), pattern.size()), pattern.size());
  std::vector<std::uint8_t> got(pattern.size());
  ASSERT_EQ(ring.try_pop(got.data(), got.size()), got.size());
  EXPECT_EQ(got, pattern);
}

TEST(ShmRing, ManyFramesStreamThroughATinyRing) {
  // Frames far larger than the ring flow through in pieces — the
  // transport's anti-deadlock contract for big collective payloads.
  SegmentFixture f(2, 2, /*ring_bytes=*/4096);
  mpp::shm::Ring ring = f.seg.ring(0, 1);
  std::vector<std::uint8_t> message(100000);
  for (std::size_t i = 0; i < message.size(); ++i)
    message[i] = static_cast<std::uint8_t>(i % 251);
  std::vector<std::uint8_t> received;
  std::size_t pushed = 0;
  while (received.size() < message.size()) {
    pushed += ring.try_push(message.data() + pushed, message.size() - pushed);
    std::uint8_t tmp[1024];
    const std::size_t n = ring.try_pop(tmp, sizeof(tmp));
    received.insert(received.end(), tmp, tmp + n);
  }
  EXPECT_EQ(received, message);
}

TEST(ShmSegment, CreateAttachSeesSameControlState) {
  SegmentFixture f(4, 2);
  mpp::shm::Segment other = mpp::shm::Segment::attach(f.dir + "/shm");
  EXPECT_EQ(other.ranks(), 4);
  EXPECT_EQ(other.topology().ranks_per_node, 2);
  EXPECT_TRUE(other.is_alive(3));
  f.seg.mark_dead(3);
  EXPECT_FALSE(other.is_alive(3));          // both mappings see the death
  EXPECT_EQ(other.failure_epoch(), 1);
  f.seg.mark_dead(3);                        // idempotent
  EXPECT_EQ(other.failure_epoch(), 1);
  other.beat(1);
  EXPECT_GE(f.seg.heartbeat_of(1), 1u);
}

TEST(ShmSegment, RingTopologyFollowsNodePlacement) {
  SegmentFixture f(4, 2);
  EXPECT_TRUE(f.seg.ring(0, 1).valid());    // same node
  EXPECT_TRUE(f.seg.ring(2, 3).valid());
  EXPECT_FALSE(f.seg.ring(1, 2).valid());   // cross node → TCP
  EXPECT_FALSE(f.seg.ring(0, 3).valid());
  EXPECT_FALSE(f.seg.ring(1, 1).valid());   // no self ring
}

TEST(ShmSegment, AttachRejectsGarbageFile) {
  const std::string dir = temp_dir();
  ASSERT_TRUE(util::io::write_file_atomic(dir + "/shm", "not a segment"));
  EXPECT_THROW(mpp::shm::Segment::attach(dir + "/shm"), util::CheckError);
  remove_tree(dir);
}

// --- backoff policy ---------------------------------------------------------

TEST(Backoff, ExponentialDelaysAreCapped) {
  mpp::proc::BackoffPolicy p;
  p.base_ms = 5.0;
  p.factor = 2.0;
  p.cap_ms = 100.0;
  EXPECT_DOUBLE_EQ(p.delay_ms(0), 0.0);   // first attempt is immediate
  EXPECT_DOUBLE_EQ(p.delay_ms(1), 5.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(2), 10.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(3), 20.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(6), 100.0);  // capped
  EXPECT_DOUBLE_EQ(p.delay_ms(20), 100.0);
}

// --- file-backed checkpoint store -------------------------------------------

TEST(FileStore, SurvivesReopenAndIsSharedAcrossInstances) {
  const std::string dir = temp_dir();
  core::SuperstepCheckpoint c;
  c.phase = "integrals";
  c.task = 2;
  c.data = {1.5, -2.25, 3.0};
  {
    core::CheckpointStore store(dir + "/ckpt");
    store.put_checkpoint(c);
    EXPECT_EQ(store.size(), 1u);
  }
  // A different process would open its own store over the same directory.
  core::CheckpointStore other(dir + "/ckpt");
  EXPECT_TRUE(other.contains(core::CheckpointStore::key_of("integrals", 2)));
  const auto got = other.get_checkpoint("integrals", 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, c);
  other.clear();
  EXPECT_EQ(other.size(), 0u);
  remove_tree(dir);
}

TEST(FileStore, CorruptFileReadsAsMissing) {
  const std::string dir = temp_dir();
  core::CheckpointStore store(dir + "/ckpt");
  store.put("born/1", "definitely not a checkpoint");
  EXPECT_TRUE(store.contains("born/1"));
  EXPECT_FALSE(store.get_checkpoint("born", 1).has_value());
  remove_tree(dir);
}

// --- whole jobs over the real transport (fork/exec + SIGKILL) ---------------

TEST(ProcJob, PingPongAcrossShmAndTcp) {
  // 4 ranks, 2 per node: ranks 0-1 and 2-3 talk over shm rings, the
  // cross-node pairs over TCP. Workers self-validate and exit nonzero on
  // any mismatch.
  const auto r = mpp::launch::run_job(self_job(4, "pingpong"));
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.survivors_clean());
  for (const auto& rank : r.ranks) EXPECT_EQ(rank.exit_code, 0);
  remove_tree(r.job_dir);
}

TEST(ProcJob, ElasticMatchesInThreadTransportBitForBit) {
  // The transport-boundary contract: the same elastic pipeline, once over
  // in-thread mailboxes and once over real processes + shm/TCP, produces
  // the same Epol bits.
  const core::GBEngine engine = make_worker_engine();
  core::ElasticConfig cfg;
  cfg.hybrid.ranks = 3;
  const double ref = core::run_hybrid_elastic(engine, cfg).epol;
  std::uint64_t ref_bits = 0;
  std::memcpy(&ref_bits, &ref, sizeof(ref_bits));

  const auto r = mpp::launch::run_job(self_job(3, "elastic"));
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.survivors_clean());
  for (int rank = 0; rank < 3; ++rank) {
    const auto bits = epol_bits(r.job_dir, rank);
    ASSERT_TRUE(bits.has_value()) << "rank " << rank;
    EXPECT_EQ(*bits, ref_bits) << "rank " << rank;
  }
  remove_tree(r.job_dir);
}

TEST(ProcJob, SigkilledRanksRecoverBitIdentically) {
  // Real process kills: SIGKILL ranks 2 and 3 once the checkpoint store
  // shows progress (provably mid-run), and require the survivors to
  // reproduce the exact fault-free bits. This is the ctest-side version
  // of the CI proc-chaos gate.
  const core::GBEngine engine = make_worker_engine();
  core::ElasticConfig cfg;
  cfg.hybrid.ranks = 4;
  const double ref = core::run_hybrid_elastic(engine, cfg).epol;
  std::uint64_t ref_bits = 0;
  std::memcpy(&ref_bits, &ref, sizeof(ref_bits));

  auto spec = self_job(4, "elastic");
  spec.kills.push_back({.rank = 3, .after_ms = 0.0, .after_store_files = 1});
  spec.kills.push_back({.rank = 2, .after_ms = 0.0, .after_store_files = 2});
  const auto r = mpp::launch::run_job(spec);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.survivors_clean());
  EXPECT_EQ(r.kills_delivered, 2);
  int checked = 0;
  for (int rank = 0; rank < 4; ++rank) {
    if (r.ranks[rank].killed_by_chaos) continue;
    const auto bits = epol_bits(r.job_dir, rank);
    ASSERT_TRUE(bits.has_value()) << "rank " << rank;
    EXPECT_EQ(*bits, ref_bits) << "rank " << rank;
    ++checked;
  }
  EXPECT_GE(checked, 2);  // ranks 0 and 1 always survive
  remove_tree(r.job_dir);
}

TEST(ProcJob, WorkerWithoutRendezvousEnvironmentFailsCleanly) {
  // Direct child invocation outside a job: exit 2, no crash, no hang.
  // (Resolve the real binary path — /proc/self/exe inside system()'s
  // shell child would name the shell, not this test.)
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  ASSERT_GT(n, 0);
  self[n] = '\0';
  const std::string cmd =
      "'" + std::string(self) + "' --worker-child pingpong 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 2);
}

// --- custom main: worker-child dispatch -------------------------------------

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--worker-child")
    return worker_child_main(argv[2]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
