// Tests for the core GB kernels: naive references, octree approximation,
// fast math, Epol binning, trees, work division.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "octgb/core/born.hpp"
#include "octgb/core/engine.hpp"
#include "octgb/core/epol.hpp"
#include "octgb/core/fastmath.hpp"
#include "octgb/core/gb_params.hpp"
#include "octgb/core/naive.hpp"
#include "octgb/core/workdiv.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/mol/zdock.hpp"
#include "octgb/perf/stats.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;
using core::EngineConfig;
using core::GBEngine;
using core::GBParams;

namespace {

/// Shared fixture data: a small synthetic protein + surface.
struct Problem {
  mol::Molecule molecule;
  surface::Surface surf;
  explicit Problem(std::size_t atoms, std::uint64_t seed = 21)
      : molecule(mol::generate_protein({.target_atoms = atoms, .seed = seed})),
        surf(surface::build_surface(molecule, {.subdivision = 1})) {}
};

}  // namespace

// ---- fast math -------------------------------------------------------------

TEST(FastMath, RsqrtAccuracy) {
  for (double x : {1e-6, 0.01, 1.0, 2.0, 1234.5, 1e8}) {
    EXPECT_NEAR(core::fast_rsqrt(x) * std::sqrt(x), 1.0, 5e-4) << x;
  }
}

TEST(FastMath, ExpAccuracyWithinSchraudolphBand) {
  for (double x : {-30.0, -5.0, -1.0, -0.25, 0.0, 0.5, 2.0, 10.0}) {
    const double rel = core::fast_exp(x) / std::exp(x);
    EXPECT_GT(rel, 0.94) << x;
    EXPECT_LT(rel, 1.06) << x;
  }
}

TEST(FastMath, InvCbrtAccuracy) {
  // Three Newton iterations from the bit-trick guess: ~2e-8 relative.
  for (double x : {1e-6, 0.5, 1.0, 8.0, 125.0, 3e7}) {
    EXPECT_NEAR(core::fast_inv_cbrt(x) * std::cbrt(x), 1.0, 1e-6) << x;
  }
}

TEST(FastMath, InvCubeMatchesExactClosely) {
  for (double x : {0.5, 1.0, 7.7, 500.0}) {
    EXPECT_NEAR(core::fast_inv_cube(x) * x * x * x, 1.0, 2e-3) << x;
  }
}

// ---- GB parameters -----------------------------------------------------------

TEST(GBParams, TauMatchesDefinition) {
  GBParams gb;
  EXPECT_NEAR(gb.tau(), core::kCoulomb * (1.0 - 1.0 / 80.0), 1e-12);
  gb.eps_solv = 2.0;
  EXPECT_NEAR(gb.tau(), core::kCoulomb * 0.5, 1e-12);
}

TEST(GBParams, FGbLimits) {
  // r = 0: f_GB = sqrt(Ri Rj); r >> R: f_GB → r.
  EXPECT_NEAR(core::f_gb(0.0, 4.0), 2.0, 1e-12);
  EXPECT_NEAR(core::f_gb(1e6, 4.0), 1000.0, 1e-3);
}

TEST(GBParams, BornFarFieldCriterion) {
  const double pow6 = std::pow(1.9, 1.0 / 6.0);
  // Touching nodes are never far.
  EXPECT_FALSE(core::born_far_enough(2.0, 1.0, 1.0, pow6));
  // Very distant nodes are far.
  EXPECT_TRUE(core::born_far_enough(100.0, 1.0, 1.0, pow6));
  // The threshold distance from §II: d* = (ra+rq)(k+1)/(k−1), k = (1+ε)^⅙.
  const double dstar = 2.0 * (pow6 + 1.0) / (pow6 - 1.0);
  EXPECT_FALSE(core::born_far_enough(dstar * 0.999, 1.0, 1.0, pow6));
  EXPECT_TRUE(core::born_far_enough(dstar * 1.001, 1.0, 1.0, pow6));
}

TEST(GBParams, EpolFarFieldCriterion) {
  EXPECT_FALSE(core::epol_far_enough(3.0, 1.0, 1.0, 0.9));
  const double dstar = 2.0 * (1.0 + 2.0 / 0.9);
  EXPECT_FALSE(core::epol_far_enough(dstar * 0.999, 1.0, 1.0, 0.9));
  EXPECT_TRUE(core::epol_far_enough(dstar * 1.001, 1.0, 1.0, 0.9));
}

// ---- naive references ---------------------------------------------------------

TEST(NaiveBorn, IsolatedSphereGivesExactRadius) {
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 2.0, 1.0, mol::Element::C});
  const auto surf = surface::build_surface(m, {.subdivision = 2});
  const auto born = core::naive_born_radii(m, surf);
  ASSERT_EQ(born.size(), 1u);
  EXPECT_NEAR(born[0], 2.0, 1e-9);
}

TEST(NaiveBorn, BuriedAtomGetsLargerRadiusThanSurfaceAtom) {
  // A line of spheres: the middle atom is more buried, so its Born radius
  // must exceed the end atoms'.
  mol::Molecule m;
  for (int i = -2; i <= 2; ++i)
    m.add_atom({{i * 2.0, 0, 0}, 1.7, 0.1, mol::Element::C});
  const auto surf = surface::build_surface(m, {.subdivision = 2});
  const auto born = core::naive_born_radii(m, surf);
  EXPECT_GT(born[2], born[0]);
  EXPECT_GT(born[2], born[4]);
  EXPECT_NEAR(born[0], born[4], 1e-6);  // symmetric ends
}

TEST(NaiveBorn, RadiusClampedBelowByVdw) {
  const Problem p(200);
  const auto born = core::naive_born_radii(p.molecule, p.surf);
  for (std::size_t i = 0; i < born.size(); ++i)
    EXPECT_GE(born[i], p.molecule.atom(i).radius - 1e-12);
}

TEST(NaiveEpol, SingleAtomSelfEnergyClosedForm) {
  // Epol of one atom = −τ/2 · q²/R (the Born equation itself).
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 2.0, -1.0, mol::Element::O});
  const std::vector<double> born = {2.0};
  const GBParams gb;
  const double e = core::naive_epol(m, born, gb);
  EXPECT_NEAR(e, -0.5 * gb.tau() * 1.0 / 2.0, 1e-12);
}

TEST(NaiveEpol, TwoAtomClosedForm) {
  mol::Molecule m;
  m.add_atom({{0, 0, 0}, 1.5, 0.4, mol::Element::C});
  m.add_atom({{3, 0, 0}, 2.0, -0.7, mol::Element::O});
  const std::vector<double> born = {1.6, 2.1};
  const GBParams gb;
  const double cross = 2.0 * 0.4 * -0.7 / core::f_gb(9.0, 1.6 * 2.1);
  const double self = 0.16 / 1.6 + 0.49 / 2.1;
  EXPECT_NEAR(core::naive_epol(m, born, gb),
              -0.5 * gb.tau() * (self + cross), 1e-12);
}

TEST(NaiveEpol, IsNegativeForRealMolecules) {
  const Problem p(300);
  const auto born = core::naive_born_radii(p.molecule, p.surf);
  EXPECT_LT(core::naive_epol(p.molecule, born), 0.0);
}

TEST(FinalizeBornRadius, ClampsAndInverts) {
  // S = 4π/R³ ⇒ R.
  const double s = 4.0 * std::numbers::pi / 8.0;  // R = 2
  EXPECT_NEAR(core::finalize_born_radius(s, 1.0), 2.0, 1e-12);
  // vdW clamp from below.
  EXPECT_DOUBLE_EQ(core::finalize_born_radius(s, 3.0), 3.0);
  // Non-positive integral → max clamp.
  EXPECT_DOUBLE_EQ(core::finalize_born_radius(-1.0, 1.5),
                   core::kMaxBornRadius);
}

// ---- octree Born radii ----------------------------------------------------------

TEST(OctreeBorn, MatchesNaiveTightlyForSmallEps) {
  const Problem p(400);
  const auto naive = core::naive_born_radii(p.molecule, p.surf);
  EngineConfig cfg;
  cfg.approx.eps_born = 0.05;
  GBEngine engine(p.molecule, p.surf, cfg);
  const auto result = engine.compute();
  ASSERT_EQ(result.born.size(), naive.size());
  for (std::size_t i = 0; i < naive.size(); ++i)
    EXPECT_NEAR(result.born[i], naive[i], 0.02 * naive[i]) << "atom " << i;
}

class BornEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(BornEpsSweep, RadiiStayWithinApproximationBand) {
  const double eps = GetParam();
  const Problem p(350);
  const auto naive = core::naive_born_radii(p.molecule, p.surf);
  EngineConfig cfg;
  cfg.approx.eps_born = eps;
  GBEngine engine(p.molecule, p.surf, cfg);
  const auto result = engine.compute();
  double worst = 0;
  for (std::size_t i = 0; i < naive.size(); ++i)
    worst = std::max(worst, std::abs(result.born[i] - naive[i]) / naive[i]);
  // The admissibility condition bounds the pointwise 1/r⁶ error by ε;
  // cancellation keeps the realized radius error far below it.
  EXPECT_LT(worst, 0.05 + 0.1 * eps) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Eps, BornEpsSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9, 2.0));

TEST(OctreeBorn, ApproxWorkDropsAsEpsGrows) {
  const Problem p(800);
  std::uint64_t prev_exact = ~0ull;
  for (double eps : {0.1, 0.5, 0.9}) {
    EngineConfig cfg;
    cfg.approx.eps_born = eps;
    GBEngine engine(p.molecule, p.surf, cfg);
    const auto result = engine.compute();
    EXPECT_LT(result.work.born_exact, prev_exact) << "eps=" << eps;
    prev_exact = result.work.born_exact;
    EXPECT_GT(result.work.born_approx, 0u);
  }
}

TEST(OctreeBorn, PushSegmentsComposeToFullArray) {
  // Splitting PUSH-INTEGRALS across segments must equal one full pass.
  const Problem p(300);
  GBEngine engine(p.molecule, p.surf);
  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  std::vector<double> node_s(n_nodes, 0.0), atom_s(n_atoms, 0.0);
  perf::WorkCounters wc;
  engine.phase_integrals({0, (std::uint32_t)engine.q_leaves().size()},
                         node_s, atom_s, wc);

  std::vector<double> full(n_atoms, 0.0), pieces(n_atoms, 0.0);
  engine.phase_push({0, (std::uint32_t)n_atoms}, node_s, atom_s, full, wc);
  for (int part = 0; part < 5; ++part) {
    const auto seg = core::even_segment(n_atoms, 5, part);
    engine.phase_push(seg, node_s, atom_s, pieces, wc);
  }
  for (std::size_t i = 0; i < n_atoms; ++i)
    EXPECT_DOUBLE_EQ(pieces[i], full[i]);
}

TEST(OctreeBorn, IntegralSegmentsComposeToFullArrays) {
  // Splitting APPROX-INTEGRALS across T_Q-leaf segments must sum to the
  // full-run arrays (this is exactly what the Allreduce asserts).
  const Problem p(300);
  GBEngine engine(p.molecule, p.surf);
  const auto n_nodes = engine.num_ta_nodes();
  const auto n_atoms = engine.num_atoms();
  const auto n_leaves = (std::uint32_t)engine.q_leaves().size();
  perf::WorkCounters wc;

  std::vector<double> node_full(n_nodes, 0.0), atom_full(n_atoms, 0.0);
  engine.phase_integrals({0, n_leaves}, node_full, atom_full, wc);

  std::vector<double> node_sum(n_nodes, 0.0), atom_sum(n_atoms, 0.0);
  for (int part = 0; part < 4; ++part) {
    const auto seg = core::even_segment(n_leaves, 4, part);
    engine.phase_integrals(seg, node_sum, atom_sum, wc);
  }
  for (std::size_t i = 0; i < n_nodes; ++i)
    EXPECT_NEAR(node_sum[i], node_full[i],
                1e-12 * (1.0 + std::abs(node_full[i])));
  for (std::size_t i = 0; i < n_atoms; ++i)
    EXPECT_NEAR(atom_sum[i], atom_full[i],
                1e-12 * (1.0 + std::abs(atom_full[i])));
}

// ---- octree Epol -----------------------------------------------------------------

TEST(OctreeEpol, MatchesNaiveTightlyForSmallEps) {
  const Problem p(400);
  const auto naive_born = core::naive_born_radii(p.molecule, p.surf);
  EngineConfig cfg;
  cfg.approx.eps_born = 0.05;
  cfg.approx.eps_epol = 0.05;
  GBEngine engine(p.molecule, p.surf, cfg);
  const auto result = engine.compute();
  const double naive_e = core::naive_epol(p.molecule, naive_born);
  EXPECT_NEAR(result.epol, naive_e, 0.01 * std::abs(naive_e));
}

TEST(OctreeEpol, PaperParametersKeepErrorUnderOnePercent) {
  // The paper's headline accuracy claim: ε_R = ε_E = 0.9 with < 1 % error
  // versus the naive algorithm (§V-F).
  const Problem p(600);
  const auto naive_born = core::naive_born_radii(p.molecule, p.surf);
  const double naive_e = core::naive_epol(p.molecule, naive_born);
  GBEngine engine(p.molecule, p.surf);  // defaults: 0.9 / 0.9
  const auto result = engine.compute();
  EXPECT_LT(std::abs(result.epol - naive_e) / std::abs(naive_e), 0.01)
      << "octree " << result.epol << " vs naive " << naive_e;
}

class EpolEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpolEpsSweep, EnergyWithinBandAndWorkMonotone) {
  const double eps = GetParam();
  const Problem p(500);
  const auto naive_born = core::naive_born_radii(p.molecule, p.surf);
  const double naive_e = core::naive_epol(p.molecule, naive_born);
  EngineConfig cfg;
  cfg.approx.eps_born = 0.3;
  cfg.approx.eps_epol = eps;
  GBEngine engine(p.molecule, p.surf, cfg);
  const auto result = engine.compute();
  EXPECT_LT(std::abs(result.epol - naive_e) / std::abs(naive_e),
            0.02 + 0.05 * eps)
      << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Eps, EpolEpsSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(EpolContext, BinsPartitionChargeExactly) {
  const Problem p(350);
  GBEngine engine(p.molecule, p.surf);
  const auto result = engine.compute();
  // Rebuild the context from tree-order radii and check the root's bins
  // sum to the molecule's net charge.
  const auto& ta = engine.atoms_tree();
  std::vector<double> born_tree(engine.num_atoms());
  const auto idx = ta.tree.point_index();
  for (std::size_t pos = 0; pos < idx.size(); ++pos)
    born_tree[pos] = result.born[idx[pos]];
  const auto ctx = engine.build_epol_context(born_tree);
  double root_sum = 0;
  for (int k = 0; k < ctx.nbins; ++k) root_sum += ctx.bins[k];
  EXPECT_NEAR(root_sum, p.molecule.net_charge(), 1e-9);
  // Every radius must land in a bin whose geometric range contains it
  // (rep[k] is the mid-bin representative; edges are rep[k]·(1+ε)^±½).
  const double half = std::exp(0.5 * ctx.log1pe);
  for (std::size_t pos = 0; pos < born_tree.size(); ++pos) {
    const int k = ctx.bin_of(born_tree[pos]);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, ctx.nbins);
    EXPECT_GE(born_tree[pos], ctx.rep[k] / half * (1.0 - 1e-9));
    EXPECT_LE(born_tree[pos], ctx.rep[k] * half * (1.0 + 1e-9));
  }
}

TEST(EpolContext, BinCountGrowsAsEpsShrinks) {
  const Problem p(350);
  GBEngine engine(p.molecule, p.surf);
  std::vector<double> born_tree(engine.num_atoms(), 0.0);
  // Synthetic radii spanning a decade.
  for (std::size_t i = 0; i < born_tree.size(); ++i)
    born_tree[i] = 1.0 + 9.0 * (double(i) / born_tree.size());
  const auto c_small = core::EpolContext::build(engine.atoms_tree(),
                                                born_tree, 0.1);
  const auto c_large = core::EpolContext::build(engine.atoms_tree(),
                                                born_tree, 0.9);
  EXPECT_GT(c_small.nbins, 2 * c_large.nbins);
}

// ---- approximate math ---------------------------------------------------------

TEST(ApproxMath, ShiftsEnergyByAFewPercent) {
  const Problem p(400);
  EngineConfig exact_cfg;
  GBEngine exact_engine(p.molecule, p.surf, exact_cfg);
  const double exact_e = exact_engine.compute().epol;

  EngineConfig approx_cfg;
  approx_cfg.approx.approx_math = true;
  GBEngine approx_engine(p.molecule, p.surf, approx_cfg);
  const double approx_e = approx_engine.compute().epol;

  const double shift = std::abs(approx_e - exact_e) / std::abs(exact_e);
  EXPECT_GT(shift, 1e-5);  // it must actually change something
  EXPECT_LT(shift, 0.08);  // §V-C reports a 4–5 % band
}

// ---- work division -------------------------------------------------------------

TEST(WorkDiv, EvenSegmentsTileTheRange) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (int P : {1, 2, 3, 7, 12}) {
      std::uint32_t cursor = 0;
      for (int i = 0; i < P; ++i) {
        const auto seg = core::even_segment(n, P, i);
        EXPECT_EQ(seg.begin, cursor);
        cursor = seg.end;
        // Balanced to within one element.
        EXPECT_LE(seg.size(), (n + P - 1) / P);
      }
      EXPECT_EQ(cursor, n);
    }
  }
}

TEST(WorkDiv, WeightedSegmentsBalancePointCounts) {
  const Problem p(900);
  GBEngine engine(p.molecule, p.surf);
  const auto& tree = engine.atoms_tree().tree;
  const auto& leaves = engine.a_leaves();
  const int P = 6;
  const auto segs = core::weighted_leaf_segments(tree, leaves, P);
  ASSERT_EQ(segs.size(), static_cast<std::size_t>(P));
  EXPECT_EQ(segs.front().begin, 0u);
  EXPECT_EQ(segs.back().end, leaves.size());
  std::uint64_t total = 0, max_part = 0;
  for (const auto& s : segs) {
    std::uint64_t part = 0;
    for (std::uint32_t li = s.begin; li < s.end; ++li)
      part += tree.node(leaves[li]).size();
    total += part;
    max_part = std::max(max_part, part);
  }
  EXPECT_EQ(total, engine.num_atoms());
  // No part exceeds its fair share by more than one leaf's worth.
  EXPECT_LE(max_part, total / P + 32 + 1);
}

// ---- engine-level sanity ---------------------------------------------------------

TEST(Engine, DeterministicAcrossRuns) {
  const Problem p(300);
  GBEngine engine(p.molecule, p.surf);
  const auto r1 = engine.compute();
  const auto r2 = engine.compute();
  EXPECT_DOUBLE_EQ(r1.epol, r2.epol);
  EXPECT_EQ(r1.born, r2.born);
  EXPECT_EQ(r1.work.born_exact, r2.work.born_exact);
  EXPECT_EQ(r1.work.epol_exact, r2.work.epol_exact);
}

TEST(Engine, SchedulerProducesSameEnergyAsSerial) {
  const Problem p(500);
  GBEngine engine(p.molecule, p.surf);
  const auto serial = engine.compute();
  ws::Scheduler sched(4);
  const auto parallel = engine.compute(&sched);
  // Atomic accumulation reorders additions; tolerance is rounding-level.
  EXPECT_NEAR(parallel.epol, serial.epol, 1e-8 * std::abs(serial.epol));
  for (std::size_t i = 0; i < serial.born.size(); ++i)
    EXPECT_NEAR(parallel.born[i], serial.born[i], 1e-9 * serial.born[i]);
}

TEST(Engine, CountersAreIdenticalRegardlessOfThreads) {
  // Operation counts are a property of the algorithm, not the schedule.
  const Problem p(400);
  GBEngine engine(p.molecule, p.surf);
  const auto serial = engine.compute();
  ws::Scheduler sched(3);
  const auto parallel = engine.compute(&sched);
  EXPECT_EQ(parallel.work.born_exact, serial.work.born_exact);
  EXPECT_EQ(parallel.work.born_approx, serial.work.born_approx);
  EXPECT_EQ(parallel.work.epol_exact, serial.work.epol_exact);
  EXPECT_EQ(parallel.work.epol_bins, serial.work.epol_bins);
  EXPECT_EQ(parallel.work.push_atoms, serial.work.push_atoms);
}

TEST(Engine, OctreeBeatsNaiveOnWork) {
  // The core asymptotic claim: work far below the naive M·N / M²
  // interaction counts, with the advantage growing with molecule size.
  const Problem p(8000);
  GBEngine engine(p.molecule, p.surf);
  const auto result = engine.compute();
  const double naive_born_work =
      double(p.molecule.size()) * double(p.surf.size());
  const double naive_epol_work =
      double(p.molecule.size()) * double(p.molecule.size());
  EXPECT_LT(double(result.work.born_exact + result.work.born_approx),
            0.30 * naive_born_work);
  EXPECT_LT(double(result.work.epol_exact + result.work.epol_bins),
            0.85 * naive_epol_work);

  // Smaller molecule: smaller relative savings (the paper's observation
  // that ε hardly matters for small molecules).
  const Problem small(800);
  GBEngine small_engine(small.molecule, small.surf);
  const auto small_result = small_engine.compute();
  const double small_ratio =
      double(small_result.work.born_exact + small_result.work.born_approx) /
      (double(small.molecule.size()) * double(small.surf.size()));
  const double big_ratio =
      double(result.work.born_exact + result.work.born_approx) /
      naive_born_work;
  EXPECT_GT(small_ratio, big_ratio);
}

TEST(Engine, BornToInputOrderInvertsPermutation) {
  const Problem p(200);
  GBEngine engine(p.molecule, p.surf);
  std::vector<double> tree_order(engine.num_atoms());
  const auto idx = engine.atoms_tree().tree.point_index();
  for (std::size_t pos = 0; pos < tree_order.size(); ++pos)
    tree_order[pos] = static_cast<double>(idx[pos]);  // original index
  const auto input_order = engine.born_to_input_order(tree_order);
  for (std::size_t i = 0; i < input_order.size(); ++i)
    EXPECT_DOUBLE_EQ(input_order[i], static_cast<double>(i));
}

// ---- structural invariance ------------------------------------------------

/// The energy must be (approximation-band) independent of the octree
/// build parameters — leaf size changes the tree shape, not the physics.
class LeafSizeInvariance : public ::testing::TestWithParam<int> {};

TEST_P(LeafSizeInvariance, EnergyStableAcrossLeafSizes) {
  static const Problem p(700);
  static const double reference = [] {
    const auto naive_born = core::naive_born_radii(p.molecule, p.surf);
    return core::naive_epol(p.molecule, naive_born);
  }();
  EngineConfig cfg;
  cfg.atoms_tree_params.max_leaf_size = GetParam();
  cfg.qpoints_tree_params.max_leaf_size = 2 * GetParam();
  GBEngine engine(p.molecule, p.surf, cfg);
  const auto result = engine.compute();
  // Tiny leaves fire more (finer-grained) far-field approximations, so
  // the realized error creeps up slightly below leaf size ~16.
  const double budget = GetParam() < 16 ? 0.02 : 0.01;
  EXPECT_LT(std::abs(result.epol - reference) / std::abs(reference), budget)
      << "leaf size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, LeafSizeInvariance,
                         ::testing::Values(4, 16, 32, 64, 128));

/// Surface resolution sweep: richer quadrature must not destabilize the
/// octree-vs-naive agreement (both consume the same point set).
class SurfaceResolution
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SurfaceResolution, OctreeTracksNaiveAtEveryResolution) {
  const auto [subdivision, degree] = GetParam();
  const auto m = mol::generate_protein({.target_atoms = 250, .seed = 27});
  const auto surf = surface::build_surface(
      m, {.subdivision = subdivision, .quad_degree = degree});
  const auto naive_born = core::naive_born_radii(m, surf);
  const double naive_e = core::naive_epol(m, naive_born);
  GBEngine engine(m, surf);
  const auto result = engine.compute();
  EXPECT_LT(std::abs(result.epol - naive_e) / std::abs(naive_e), 0.01)
      << "subdivision " << subdivision << " degree " << degree;
}

INSTANTIATE_TEST_SUITE_P(Resolutions, SurfaceResolution,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 4)));

// ---- batched SoA kernels -------------------------------------------------

#include "octgb/core/batch_kernels.hpp"
#include "octgb/core/born.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/rng.hpp"

TEST(BatchKernels, BornIntegralMatchesScalarSum) {
  util::Xoshiro256 rng(123);
  const std::size_t n = 257;  // odd size: exercises vector remainders
  std::vector<geom::Vec3> pts(n), normals(n);
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    pts[k] = {rng.uniform(-10, 10), rng.uniform(-10, 10),
              rng.uniform(-10, 10)};
    normals[k] = geom::Vec3{rng.normal(), rng.normal(), rng.normal()}
                     .normalized();
    w[k] = rng.uniform(0.01, 0.5);
  }
  std::vector<double> qx(n), qy(n), qz(n), wnx(n), wny(n), wnz(n);
  core::split_soa(pts, qx, qy, qz);
  for (std::size_t k = 0; k < n; ++k) {
    wnx[k] = w[k] * normals[k].x;
    wny[k] = w[k] * normals[k].y;
    wnz[k] = w[k] * normals[k].z;
  }
  const geom::Vec3 a{15, -3, 2};  // outside the cloud
  double scalar = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const geom::Vec3 d = pts[k] - a;
    scalar += w[k] * normals[k].dot(d) * core::inv_r6(d.norm2(), false);
  }
  const double batched = core::batch_born_integral(
      a.x, a.y, a.z, {qx, qy, qz, wnx, wny, wnz});
  EXPECT_NEAR(batched, scalar, 1e-12 * (std::abs(scalar) + 1.0));
}

TEST(BatchKernels, CoincidentPointContributesZero) {
  // A q-point exactly on the atom center must be skipped, not NaN.
  std::vector<double> qx = {0.0, 3.0}, qy = {0.0, 0.0}, qz = {0.0, 0.0};
  std::vector<double> wnx = {1.0, 1.0}, wny = {0.0, 0.0}, wnz = {0.0, 0.0};
  const double v = core::batch_born_integral(
      0.0, 0.0, 0.0, {qx, qy, qz, wnx, wny, wnz});
  EXPECT_TRUE(std::isfinite(v));
  // Only the second point contributes: wn·d/|d|⁶ = 3/729.
  EXPECT_NEAR(v, 3.0 / 729.0, 1e-15);
}

TEST(BatchKernels, EpolSumMatchesScalarFgb) {
  util::Xoshiro256 rng(321);
  const std::size_t n = 130;
  std::vector<double> ux(n), uy(n), uz(n), qu(n), ru(n);
  for (std::size_t k = 0; k < n; ++k) {
    ux[k] = rng.uniform(-8, 8);
    uy[k] = rng.uniform(-8, 8);
    uz[k] = rng.uniform(-8, 8);
    qu[k] = rng.uniform(-0.8, 0.8);
    ru[k] = rng.uniform(1.2, 5.0);
  }
  const double vx = 1.0, vy = -2.0, vz = 0.5, qv = -0.6, rv = 2.3;
  double scalar = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double r2 = (ux[k] - vx) * (ux[k] - vx) +
                      (uy[k] - vy) * (uy[k] - vy) +
                      (uz[k] - vz) * (uz[k] - vz);
    scalar += qu[k] * qv / core::f_gb(r2, ru[k] * rv);
  }
  const double batched =
      core::batch_epol_sum(vx, vy, vz, qv, rv, {ux, uy, uz, qu, ru});
  EXPECT_NEAR(batched, scalar, 1e-12 * (std::abs(scalar) + 1.0));
}

TEST(BatchKernels, SplitSoaRoundTrip) {
  const std::vector<geom::Vec3> pts = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  std::vector<double> x(3), y(3), z(3);
  core::split_soa(pts, x, y, z);
  EXPECT_EQ(x[1], 4.0);
  EXPECT_EQ(y[2], 8.0);
  EXPECT_EQ(z[0], 3.0);
  std::vector<double> bad(2);
  EXPECT_THROW(core::split_soa(pts, bad, y, z), util::CheckError);
}
