// Tests for the distributed / distributed-shared hybrid driver (Fig. 4)
// running on the real mpp runtime.

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/core/hybrid.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;
using core::GBEngine;
using core::HybridConfig;
using core::run_hybrid;

namespace {

struct Fixture {
  mol::Molecule molecule;
  surface::Surface surf;
  GBEngine engine;
  double reference_epol;
  std::vector<double> reference_born;

  explicit Fixture(std::size_t atoms = 600)
      : molecule(mol::generate_protein({.target_atoms = atoms, .seed = 31})),
        surf(surface::build_surface(molecule, {.subdivision = 1})),
        engine(molecule, surf) {
    const auto r = engine.compute();
    reference_epol = r.epol;
    reference_born = r.born;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void expect_matches_reference(const core::HybridResult& r,
                              double rel = 1e-9) {
  const Fixture& f = fixture();
  EXPECT_NEAR(r.epol, f.reference_epol, rel * std::abs(f.reference_epol));
  ASSERT_EQ(r.born.size(), f.reference_born.size());
  for (std::size_t i = 0; i < r.born.size(); ++i)
    EXPECT_NEAR(r.born[i], f.reference_born[i],
                rel * f.reference_born[i] + 1e-12)
        << "atom " << i;
}

}  // namespace

TEST(Hybrid, SingleRankSingleThreadEqualsEngine) {
  HybridConfig cfg;
  cfg.ranks = 1;
  const auto r = run_hybrid(fixture().engine, cfg);
  expect_matches_reference(r, 1e-12);
}

/// OCT_MPI (P ranks × 1 thread): the parameterized P sweep is the key
/// distributed-correctness property — every P must give the same physics.
class HybridRanks : public ::testing::TestWithParam<int> {};

TEST_P(HybridRanks, PureDistributedMatchesSerialReference) {
  HybridConfig cfg;
  cfg.ranks = GetParam();
  cfg.topology.ranks_per_node = 4;
  const auto r = run_hybrid(fixture().engine, cfg);
  expect_matches_reference(r);
  EXPECT_EQ(r.work_per_rank.size(), static_cast<std::size_t>(GetParam()));
  EXPECT_EQ(r.comm_per_rank.size(), static_cast<std::size_t>(GetParam()));
}

TEST_P(HybridRanks, NodeBasedEnergyIsIdenticalAcrossP) {
  // §IV: node-based division has *constant* error w.r.t. P, because each
  // rank always handles whole leaves. Energies must agree bitwise-tightly
  // across P (only the reduce order differs).
  HybridConfig cfg;
  cfg.ranks = GetParam();
  const auto r = run_hybrid(fixture().engine, cfg);
  HybridConfig cfg1;
  cfg1.ranks = 1;
  const auto r1 = run_hybrid(fixture().engine, cfg1);
  EXPECT_NEAR(r.epol, r1.epol, 1e-9 * std::abs(r1.epol));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HybridRanks,
                         ::testing::Values(2, 3, 4, 7));

TEST(Hybrid, HybridModeMatchesReference) {
  // OCT_MPI+CILK: 2 ranks × 3 threads.
  HybridConfig cfg;
  cfg.ranks = 2;
  cfg.threads_per_rank = 3;
  const auto r = run_hybrid(fixture().engine, cfg);
  expect_matches_reference(r, 1e-8);
  EXPECT_GT(r.work_total.spawns, 0u);
}

TEST(Hybrid, WeightedDivisionMatchesReference) {
  HybridConfig cfg;
  cfg.ranks = 4;
  cfg.weighted_division = true;
  const auto r = run_hybrid(fixture().engine, cfg);
  expect_matches_reference(r);
}

TEST(Hybrid, AtomBasedEpolIsCloseButDivisionDependent) {
  // Atom-based division changes which (U, V) pairs are admissible, so the
  // energy moves with P — the effect the paper reports (§IV). It must stay
  // within the approximation band but generally differs across P.
  const Fixture& f = fixture();
  std::vector<double> energies;
  for (int P : {1, 2, 5}) {
    HybridConfig cfg;
    cfg.ranks = P;
    cfg.atom_based_epol = true;
    const auto r = run_hybrid(f.engine, cfg);
    EXPECT_NEAR(r.epol, f.reference_epol,
                0.02 * std::abs(f.reference_epol));
    energies.push_back(r.epol);
  }
  // The P = 1 atom-based energy differs from at least one multi-P value
  // (identical values would mean division boundaries don't matter, which
  // would contradict the paper's §IV observation).
  EXPECT_TRUE(energies[0] != energies[1] || energies[0] != energies[2]);
}

TEST(Hybrid, CommunicationVolumeScalesWithRanks) {
  HybridConfig cfg2, cfg8;
  cfg2.ranks = 2;
  cfg8.ranks = 8;
  const auto r2 = run_hybrid(fixture().engine, cfg2);
  const auto r8 = run_hybrid(fixture().engine, cfg8);
  auto total_bytes = [](const core::HybridResult& r) {
    std::uint64_t b = 0;
    for (const auto& c : r.comm_per_rank)
      b += c.bytes_internode + c.bytes_intranode;
    return b;
  };
  EXPECT_GT(total_bytes(r8), total_bytes(r2));
}

TEST(Hybrid, WorkIsReasonablyBalancedAcrossRanks) {
  HybridConfig cfg;
  cfg.ranks = 4;
  const auto r = run_hybrid(fixture().engine, cfg);
  std::uint64_t min_work = ~0ull, max_work = 0;
  for (const auto& w : r.work_per_rank) {
    const std::uint64_t t = w.born_exact + w.born_approx + w.epol_exact +
                            w.epol_bins;
    min_work = std::min(min_work, t);
    max_work = std::max(max_work, t);
  }
  EXPECT_LT(static_cast<double>(max_work),
            4.0 * static_cast<double>(min_work))
      << "static division should be balanced within a small factor";
}

TEST(Hybrid, BytesPerRankCoversReplicatedData) {
  HybridConfig cfg;
  cfg.ranks = 3;
  const auto r = run_hybrid(fixture().engine, cfg);
  EXPECT_GE(r.bytes_per_rank, fixture().engine.footprint_bytes());
}

TEST(Hybrid, IntraVsInterNodeTrafficFollowsTopology) {
  // 4 ranks on one node: no inter-node traffic at all.
  HybridConfig all_one_node;
  all_one_node.ranks = 4;
  all_one_node.topology.ranks_per_node = 4;
  const auto r1 = run_hybrid(fixture().engine, all_one_node);
  for (const auto& c : r1.comm_per_rank) EXPECT_EQ(c.bytes_internode, 0u);

  // 4 ranks across 4 nodes: no intra-node traffic.
  HybridConfig spread;
  spread.ranks = 4;
  spread.topology.ranks_per_node = 1;
  const auto r2 = run_hybrid(fixture().engine, spread);
  for (const auto& c : r2.comm_per_rank) EXPECT_EQ(c.bytes_intranode, 0u);
}
