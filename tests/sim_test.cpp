// Tests for the cluster simulation harness: physics identical to the real
// hybrid runtime, modeled times behave like the paper's curves.

#include <gtest/gtest.h>

#include <cmath>

#include "octgb/core/hybrid.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/sim/cluster.hpp"
#include "octgb/surface/surface.hpp"

using namespace octgb;
using core::GBEngine;
using sim::ClusterConfig;
using sim::simulate_cluster;

namespace {

struct Fixture {
  mol::Molecule molecule;
  surface::Surface surf;
  GBEngine engine;
  Fixture()
      : molecule(mol::generate_virus_shell({.target_atoms = 6000, .seed = 5})),
        surf(surface::build_surface(molecule, {.subdivision = 0})),
        engine(molecule, surf) {}
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

TEST(Sim, EnergyMatchesRealHybridRuntime) {
  ClusterConfig sim_cfg;
  sim_cfg.ranks = 4;
  const auto sim_r = simulate_cluster(fixture().engine, sim_cfg);

  core::HybridConfig hyb_cfg;
  hyb_cfg.ranks = 4;
  const auto hyb_r = run_hybrid(fixture().engine, hyb_cfg);

  EXPECT_NEAR(sim_r.epol, hyb_r.epol, 1e-9 * std::abs(hyb_r.epol));
  ASSERT_EQ(sim_r.born.size(), hyb_r.born.size());
  for (std::size_t i = 0; i < sim_r.born.size(); ++i)
    EXPECT_NEAR(sim_r.born[i], hyb_r.born[i], 1e-9 * hyb_r.born[i] + 1e-12);
}

TEST(Sim, WorkCountersMatchRealHybridRuntime) {
  ClusterConfig sim_cfg;
  sim_cfg.ranks = 3;
  const auto sim_r = simulate_cluster(fixture().engine, sim_cfg);
  core::HybridConfig hyb_cfg;
  hyb_cfg.ranks = 3;
  const auto hyb_r = run_hybrid(fixture().engine, hyb_cfg);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(sim_r.work_per_rank[r].born_exact,
              hyb_r.work_per_rank[r].born_exact);
    EXPECT_EQ(sim_r.work_per_rank[r].epol_exact,
              hyb_r.work_per_rank[r].epol_exact);
    EXPECT_EQ(sim_r.work_per_rank[r].epol_bins,
              hyb_r.work_per_rank[r].epol_bins);
  }
}

TEST(Sim, EnergyIndependentOfClusterShape) {
  double ref = 0;
  for (int P : {1, 2, 6, 24}) {
    ClusterConfig cfg;
    cfg.ranks = P;
    const auto r = simulate_cluster(fixture().engine, cfg);
    if (P == 1)
      ref = r.epol;
    else
      EXPECT_NEAR(r.epol, ref, 1e-9 * std::abs(ref)) << "P=" << P;
  }
}

TEST(Sim, ComputeTimeScalesDownWithRanks) {
  double prev = 1e300;
  for (int P : {1, 2, 4, 8, 16}) {
    ClusterConfig cfg;
    cfg.ranks = P;
    const auto r = simulate_cluster(fixture().engine, cfg);
    EXPECT_LT(r.compute_seconds, prev) << "P=" << P;
    prev = r.compute_seconds;
  }
}

TEST(Sim, ThreadsAlsoScaleComputeDown) {
  ClusterConfig one, six;
  one.ranks = 2;
  one.threads_per_rank = 1;
  six.ranks = 2;
  six.threads_per_rank = 6;
  const auto r1 = simulate_cluster(fixture().engine, one);
  const auto r6 = simulate_cluster(fixture().engine, six);
  EXPECT_LT(r6.compute_seconds, r1.compute_seconds);
  EXPECT_GT(r6.compute_seconds, r1.compute_seconds / 6.5);
}

TEST(Sim, CommTimeGrowsWithRanks) {
  ClusterConfig small, big;
  small.ranks = 2;
  big.ranks = 64;
  const auto rs = simulate_cluster(fixture().engine, small);
  const auto rb = simulate_cluster(fixture().engine, big);
  EXPECT_GT(rb.comm_seconds, rs.comm_seconds);
}

TEST(Sim, HybridHasLessCommThanPureMpiAtSameCoreCount) {
  // 24 cores: OCT_MPI = 24×1, hybrid = 4×6 (2 nodes of 12 cores).
  ClusterConfig mpi, hybrid;
  mpi.ranks = 24;
  mpi.threads_per_rank = 1;
  hybrid.ranks = 4;
  hybrid.threads_per_rank = 6;
  // Isolate collective volume from the fixed cilk/MPI interfacing cost.
  hybrid.mpi_cilk_interface_seconds = 0.0;
  const auto rm = simulate_cluster(fixture().engine, mpi);
  const auto rh = simulate_cluster(fixture().engine, hybrid);
  EXPECT_EQ(rm.total_cores, rh.total_cores);
  EXPECT_LT(rh.comm_seconds, rm.comm_seconds);
}

TEST(Sim, ReplicatedMemoryRatioMatchesRankRatio) {
  // §V-B: 12 single-thread ranks per node use ≈ 6× the memory of
  // 2 ranks × 6 threads (5.86× measured in the paper — slightly below 6
  // because per-rank working arrays don't shrink with P).
  ClusterConfig mpi, hybrid;
  mpi.ranks = 12;
  hybrid.ranks = 2;
  hybrid.threads_per_rank = 6;
  const auto rm = simulate_cluster(fixture().engine, mpi);
  const auto rh = simulate_cluster(fixture().engine, hybrid);
  const double node_bytes_mpi = 12.0 * double(rm.bytes_per_rank);
  const double node_bytes_hybrid = 2.0 * double(rh.bytes_per_rank);
  const double ratio = node_bytes_mpi / node_bytes_hybrid;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LE(ratio, 6.0);
}

TEST(Sim, JitterProducesSpreadAboveBase) {
  ClusterConfig cfg;
  cfg.ranks = 8;
  const auto base = simulate_cluster(fixture().engine, cfg);
  double min_t = 1e300, max_t = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const double t = sim::jittered_total_seconds(base, cfg, 1000 + rep);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_GE(min_t, base.total_seconds * 0.90);
  EXPECT_GT(max_t, min_t);           // there is actual spread
  EXPECT_LT(max_t, base.total_seconds * 1.6);
}

TEST(Sim, MaxJitterGrowsWithRankCount) {
  // More ranks → the slowest straggler is slower (Fig. 6's OCT_MPI max
  // curve sitting above the hybrid one).
  ClusterConfig few, many;
  few.ranks = 4;
  many.ranks = 64;
  const auto rf = simulate_cluster(fixture().engine, few);
  const auto rm = simulate_cluster(fixture().engine, many);
  double worst_few = 0, worst_many = 0;
  for (int rep = 0; rep < 30; ++rep) {
    worst_few = std::max(
        worst_few, sim::jittered_total_seconds(rf, few, rep) /
                       rf.total_seconds);
    worst_many = std::max(
        worst_many, sim::jittered_total_seconds(rm, many, rep) /
                        rm.total_seconds);
  }
  EXPECT_GT(worst_many, worst_few);
}

TEST(Sim, CollectiveCostsAreMonotone) {
  perf::MachineModel m;
  mpp::Topology topo{12};
  sim::CollectiveCosts c12{m, topo, 12}, c144{m, topo, 144};
  EXPECT_GT(c144.tree_collective(1e6), c12.tree_collective(1e6));
  EXPECT_GT(c12.tree_collective(1e7), c12.tree_collective(1e6));
  EXPECT_GT(c144.allgatherv(1e6), c12.allgatherv(1e6));
  EXPECT_DOUBLE_EQ((sim::CollectiveCosts{m, topo, 1}).allreduce(1e6), 0.0);
}

TEST(Sim, CacheFactorPenalizesOversubscribedSockets) {
  perf::MachineModel m;
  // Working set below the L3 share: no penalty.
  EXPECT_DOUBLE_EQ(m.cache_factor(1e6, 1), 1.0);
  // Far above: penalty approaches the cap.
  EXPECT_GT(m.cache_factor(1e9, 6), 1.3);
  EXPECT_LE(m.cache_factor(1e12, 6), m.cache_miss_penalty);
  // More cores sharing the L3 → more pressure at the same working set.
  EXPECT_GE(m.cache_factor(6e6, 6), m.cache_factor(6e6, 1));
}
