// Tests for octgb::mol — elements, molecules, PDB I/O, generators.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "octgb/mol/elements.hpp"
#include "octgb/mol/generate.hpp"
#include "octgb/mol/molecule.hpp"
#include "octgb/mol/pdb.hpp"
#include "octgb/mol/zdock.hpp"
#include "octgb/util/check.hpp"
#include "octgb/util/strings.hpp"

using namespace octgb::mol;

// ---- elements --------------------------------------------------------------

TEST(Elements, BondiRadii) {
  EXPECT_DOUBLE_EQ(vdw_radius(Element::H), 1.20);
  EXPECT_DOUBLE_EQ(vdw_radius(Element::C), 1.70);
  EXPECT_DOUBLE_EQ(vdw_radius(Element::N), 1.55);
  EXPECT_DOUBLE_EQ(vdw_radius(Element::O), 1.52);
  EXPECT_DOUBLE_EQ(vdw_radius(Element::S), 1.80);
  EXPECT_DOUBLE_EQ(vdw_radius(Element::Unknown), 1.70);
}

TEST(Elements, ParseSymbols) {
  EXPECT_EQ(parse_element("C"), Element::C);
  EXPECT_EQ(parse_element(" n "), Element::N);
  EXPECT_EQ(parse_element("FE"), Element::Fe);
  EXPECT_EQ(parse_element("zn"), Element::Zn);
  EXPECT_EQ(parse_element("Xx"), Element::Unknown);
  EXPECT_EQ(parse_element("D"), Element::H);  // deuterium
}

TEST(Elements, ElementFromAtomName) {
  EXPECT_EQ(element_from_atom_name(" CA "), Element::C);
  EXPECT_EQ(element_from_atom_name(" N  "), Element::N);
  EXPECT_EQ(element_from_atom_name("1HB1"), Element::H);
  EXPECT_EQ(element_from_atom_name("FE  "), Element::Fe);
  EXPECT_EQ(element_from_atom_name(" OG1"), Element::O);
  EXPECT_EQ(element_from_atom_name(" SG "), Element::S);
}

// ---- molecule ---------------------------------------------------------------

TEST(Molecule, AddAtomsAndBasics) {
  Molecule m("test");
  m.add_atom({{0, 0, 0}, 1.5, 0.5, Element::C});
  m.add_atom({{2, 0, 0}, 1.2, -0.5, Element::O});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.net_charge(), 0.0);
  EXPECT_EQ(m.centroid(), (octgb::geom::Vec3{1, 0, 0}));
  EXPECT_EQ(m.name(), "test");
}

TEST(Molecule, BoundsAndInflatedBounds) {
  Molecule m;
  m.add_atom({{0, 0, 0}, 1.5, 0, Element::C});
  m.add_atom({{4, 0, 0}, 2.0, 0, Element::C});
  EXPECT_DOUBLE_EQ(m.bounds().extent().x, 4.0);
  EXPECT_DOUBLE_EQ(m.inflated_bounds().lo.x, -1.5);
  EXPECT_DOUBLE_EQ(m.inflated_bounds().hi.x, 6.0);
}

TEST(Molecule, MixingLabeledAndUnlabeledIsRejected) {
  Molecule m;
  m.add_atom({{0, 0, 0}, 1, 0, Element::C});
  EXPECT_THROW(m.add_atom({{1, 0, 0}, 1, 0, Element::C}, AtomLabel{}),
               octgb::util::CheckError);
}

TEST(Molecule, TransformMovesAllAtoms) {
  Molecule m;
  m.add_atom({{1, 0, 0}, 1, 0, Element::C});
  m.add_atom({{0, 1, 0}, 1, 0, Element::C});
  m.transform(octgb::geom::RigidTransform::translate({10, 0, 0}));
  EXPECT_EQ(m.atom(0).pos, (octgb::geom::Vec3{11, 0, 0}));
  EXPECT_EQ(m.atom(1).pos, (octgb::geom::Vec3{10, 1, 0}));
}

TEST(Molecule, FootprintGrowsWithAtoms) {
  Molecule small, big;
  for (int i = 0; i < 10; ++i)
    small.add_atom({{double(i), 0, 0}, 1, 0, Element::C});
  for (int i = 0; i < 1000; ++i)
    big.add_atom({{double(i), 0, 0}, 1, 0, Element::C});
  EXPECT_GT(big.footprint_bytes(), small.footprint_bytes());
}

// ---- PDB I/O ---------------------------------------------------------------

TEST(Pdb, ParseMinimalRecord) {
  std::istringstream in(
      "ATOM      1  CA  ALA A   1      11.104   6.134  -6.504  1.00  0.00"
      "           C\n"
      "END\n");
  const Molecule m = read_pdb(in, "mini");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_NEAR(m.atom(0).pos.x, 11.104, 1e-9);
  EXPECT_NEAR(m.atom(0).pos.y, 6.134, 1e-9);
  EXPECT_NEAR(m.atom(0).pos.z, -6.504, 1e-9);
  EXPECT_EQ(m.atom(0).element, Element::C);
  EXPECT_DOUBLE_EQ(m.atom(0).radius, 1.70);
  EXPECT_DOUBLE_EQ(m.atom(0).charge, 0.07);  // backbone CA
  ASSERT_TRUE(m.has_labels());
  EXPECT_EQ(m.labels()[0].residue_name, "ALA");
  EXPECT_EQ(m.labels()[0].residue_seq, 1);
}

TEST(Pdb, HetatmAndUnknownElementFallsBackToAtomName) {
  std::istringstream in(
      "HETATM    1 FE   HEM A   1       0.000   0.000   0.000  1.00  0.00\n");
  const Molecule m = read_pdb(in);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.atom(0).element, Element::Fe);
}

TEST(Pdb, IgnoresNonAtomRecordsAndStopsAtEnd) {
  std::istringstream in(
      "HEADER    test\n"
      "REMARK    nothing\n"
      "ATOM      1  N   GLY A   1       0.000   0.000   0.000\n"
      "TER\n"
      "END\n"
      "ATOM      2  O   GLY A   2       1.000   0.000   0.000\n");
  const Molecule m = read_pdb(in);
  EXPECT_EQ(m.size(), 1u);  // record after END ignored
}

TEST(Pdb, MalformedInputThrowsParseErrorsWithLineNumbers) {
  auto expect_parse_error = [](const std::string& text,
                               const std::string& needle) {
    std::istringstream in(text);
    try {
      read_pdb(in, "bad");
      FAIL() << "expected PdbParseError for: " << text;
    } catch (const PdbParseError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  // Non-numeric coordinate: names the line and the axis.
  expect_parse_error(
      "ATOM      1  CA  ALA A   1      banana   6.134  -6.504\n",
      "line 1: non-numeric x-coordinate");
  // Blank coordinate column (short line cuts off z).
  expect_parse_error(
      "REMARK    padding\n"
      "ATOM      1  CA  ALA A   1      11.104   6.134\n",
      "line 2: blank z-coordinate");
  // Overlong line: not a PDB record at all.
  expect_parse_error("ATOM  " + std::string(600, 'x') + "\n", "line 1");
  // No atoms at all is an error, never an empty molecule.
  expect_parse_error("HEADER    empty\nEND\n", "no ATOM/HETATM records");
}

TEST(Pdb, RoundTripPreservesGeometryAndEnergyInputs) {
  const Molecule original = generate_protein({.target_atoms = 120, .seed = 3});
  std::ostringstream out;
  write_pdb(original, out);
  std::istringstream in(out.str());
  const Molecule parsed = read_pdb(in, original.name());
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    // PDB stores 3 decimals of position.
    EXPECT_NEAR(parsed.atom(i).pos.x, original.atom(i).pos.x, 5e-4);
    EXPECT_NEAR(parsed.atom(i).pos.y, original.atom(i).pos.y, 5e-4);
    EXPECT_NEAR(parsed.atom(i).pos.z, original.atom(i).pos.z, 5e-4);
    EXPECT_EQ(parsed.atom(i).element, original.atom(i).element);
    EXPECT_DOUBLE_EQ(parsed.atom(i).radius, original.atom(i).radius);
    EXPECT_DOUBLE_EQ(parsed.atom(i).charge, original.atom(i).charge);
  }
}

TEST(Pdb, ChargeTableBackboneSumsNearZero) {
  // N + HN + CA + HA + C + O ≈ 0 (neutral backbone).
  const double sum = protein_partial_charge("N", "GLY") +
                     protein_partial_charge("HN", "GLY") +
                     protein_partial_charge("CA", "GLY") +
                     protein_partial_charge("HA", "GLY") +
                     protein_partial_charge("C", "GLY") +
                     protein_partial_charge("O", "GLY");
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

// ---- generators -------------------------------------------------------------

TEST(Generate, DeterministicPerSeed) {
  const Molecule a = generate_protein({.target_atoms = 300, .seed = 42});
  const Molecule b = generate_protein({.target_atoms = 300, .seed = 42});
  const Molecule c = generate_protein({.target_atoms = 300, .seed = 43});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.atom(i).pos, b.atom(i).pos);
    EXPECT_EQ(a.atom(i).charge, b.atom(i).charge);
  }
  EXPECT_NE(a.atom(5).pos, c.atom(5).pos);
}

class GenerateSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GenerateSizes, HitsAtomBudgetWithinOneResidue) {
  const std::size_t target = GetParam();
  const Molecule m = generate_protein({.target_atoms = target, .seed = 1});
  EXPECT_GE(m.size(), target);
  EXPECT_LE(m.size(), target + 32);  // at most one residue overshoot
}

TEST_P(GenerateSizes, GlobularProteinDensity) {
  const std::size_t target = GetParam();
  const Molecule m = generate_protein({.target_atoms = target, .seed = 2});
  // Radius of gyration of a globule scales as n^(1/3); packing should be
  // protein-like: ~7–20 atoms per nm³ within the bounding sphere.
  const auto c = m.centroid();
  double r2max = 0;
  for (const auto& a : m.atoms()) r2max = std::max(r2max, octgb::geom::dist2(a.pos, c));
  const double vol = 4.0 / 3.0 * 3.14159265 * std::pow(std::sqrt(r2max), 3);
  const double density = m.size() / vol;  // atoms per Å³
  EXPECT_GT(density, 0.02);
  EXPECT_LT(density, 0.4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GenerateSizes,
                         ::testing::Values(100, 436, 1000, 2260, 5000));

TEST(Generate, NetChargeIsSmall) {
  const Molecule m = generate_protein({.target_atoms = 2000, .seed = 9});
  // Residues are individually near-neutral except charged side chains.
  EXPECT_LT(std::abs(m.net_charge()), 60.0);
  EXPECT_GT(std::abs(m.net_charge()), 1e-6);  // but not artificially zero
}

TEST(Generate, VirusShellIsHollow) {
  const Molecule shell = generate_virus_shell({.target_atoms = 50000,
                                               .seed = 7,
                                               .thickness = 18.0});
  EXPECT_GE(shell.size(), 49000u);
  const auto c = shell.centroid();
  double rmin = 1e30, rmax = 0;
  for (const auto& a : shell.atoms()) {
    const double r = octgb::geom::dist(a.pos, c);
    rmin = std::min(rmin, r);
    rmax = std::max(rmax, r);
  }
  // Hollow: the inner cavity is a substantial fraction of the radius.
  EXPECT_GT(rmin, 0.35 * rmax);
  EXPECT_LT(rmax - rmin, 40.0);  // wall ≈ thickness + residue extent
}

// ---- zdock registry ----------------------------------------------------------

TEST(Zdock, RegistryAnchorsMatchPaper) {
  const auto set = zdock_set();
  ASSERT_EQ(set.size(), 42u);
  EXPECT_EQ(set.front().atoms, 436u);   // smallest
  EXPECT_EQ(set.back().atoms, 16301u);  // the molecule of the 11× anchor
  EXPECT_STREQ(set.front().name, "1PPE_l_b");
  EXPECT_STREQ(set.back().name, "1BGX_l_b");
  // Sorted by size (the figures' x-axis order).
  for (std::size_t i = 1; i < set.size(); ++i)
    EXPECT_GT(set[i].atoms, set[i - 1].atoms);
}

TEST(Zdock, FindBenchmark) {
  EXPECT_NE(find_benchmark("1PPE_l_b"), nullptr);
  EXPECT_EQ(find_benchmark("nonexistent"), nullptr);
}

TEST(Zdock, MakeBenchmarkMoleculeIsDeterministicAndNamed) {
  const Molecule a = make_benchmark_molecule("1PPE_l_b");
  const Molecule b = make_benchmark_molecule("1PPE_l_b");
  EXPECT_EQ(a.name(), "1PPE_l_b");
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GE(a.size(), 436u);
  EXPECT_EQ(a.atom(10).pos, b.atom(10).pos);
  EXPECT_THROW(make_benchmark_molecule("nope"), octgb::util::CheckError);
}

TEST(Zdock, VirusScalesApplyToAtomCounts) {
  const Molecule cmv = make_cmv(0.02);
  EXPECT_NEAR(static_cast<double>(cmv.size()), 0.02 * kCmvAtoms,
              0.02 * kCmvAtoms * 0.05 + 40);
  EXPECT_NE(cmv.name().find("CMV"), std::string::npos);
}

TEST(Pdb, AtomRecordColumnsAreSpecExact) {
  // Verify the fixed-column layout against the PDB 3.3 spec: x in 31-38,
  // y in 39-46, z in 47-54 (1-based), record name in 1-6.
  Molecule m;
  m.add_atom({{12.345, -6.789, 0.001}, 1.7, 0.0, Element::C});
  std::ostringstream out;
  write_pdb(m, out);
  const std::string line = octgb::util::split(out.str(), '\n')[0];
  ASSERT_GE(line.size(), 54u);
  EXPECT_EQ(line.substr(0, 6), "ATOM  ");
  EXPECT_EQ(octgb::util::trim(line.substr(30, 8)), "12.345");
  EXPECT_EQ(octgb::util::trim(line.substr(38, 8)), "-6.789");
  EXPECT_EQ(octgb::util::trim(line.substr(46, 8)), "0.001");
}

TEST(Pdb, SerialAndResseqClampForHugeMolecules) {
  // Serial is a 5-digit field, resSeq 4 digits: writers must clamp, not
  // corrupt neighboring columns.
  Molecule m;
  AtomLabel label;
  label.serial = 1234567;
  label.residue_seq = 123456;
  label.atom_name = " CA ";
  label.residue_name = "ALA";
  m.add_atom({{1, 2, 3}, 1.7, 0.0, Element::C}, label);
  std::ostringstream out;
  write_pdb(m, out);
  const std::string line = octgb::util::split(out.str(), '\n')[0];
  // The coordinate columns must still parse.
  EXPECT_NO_THROW({
    std::istringstream in(out.str());
    const Molecule parsed = read_pdb(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_NEAR(parsed.atom(0).pos.x, 1.0, 1e-9);
  });
}

TEST(Generate, CompactnessControlsDensity) {
  const auto loose = generate_protein(
      {.target_atoms = 800, .seed = 31, .compactness = 0.5});
  const auto dense = generate_protein(
      {.target_atoms = 800, .seed = 31, .compactness = 2.0});
  auto radius_of = [](const Molecule& m) {
    const auto c = m.centroid();
    double r2 = 0;
    for (const auto& a : m.atoms())
      r2 = std::max(r2, octgb::geom::dist2(a.pos, c));
    return std::sqrt(r2);
  };
  EXPECT_GT(radius_of(loose), radius_of(dense));
}
