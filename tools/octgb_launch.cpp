// mpirun-style launcher + chaos driver for the out-of-process transport
// (DESIGN.md §2.10). Wraps mpp::launch::run_job around tools/octgb_worker.
//
// Modes:
//
//   (default)   one job: fork/exec --ranks workers, wire rendezvous, reap.
//               `--kill R@MS` (comma list) SIGKILLs rank R at job time MS.
//   --gate      the CI chaos gate: (1) compute the in-thread reference
//               Epol, (2) run a fault-free process job, (3) run kill
//               schedules taking out 1 .. P-1 rank processes mid-run.
//               Every surviving rank of every job must report the exact
//               reference bits; any mismatch exits 1. Also compares the
//               measured recovery overhead against the sim::cluster
//               Young/Daly model and writes a metrics JSON.
//   --fig5      multi-process scaling sweep (1..--max-ranks, doubling):
//               wall time + speedup per P, written as a CSV.
//
// Workers write `epol.<rank>` (hex double bits) and `metrics.<rank>.json`
// into the job directory; this binary never parses floating-point text —
// bit-identity is checked on the raw bits.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>

#include "octgb/octgb.hpp"

using namespace octgb;
using mpp::launch::JobResult;
using mpp::launch::JobSpec;
using mpp::launch::KillSpec;

namespace {

struct CliOptions {
  int ranks = 4;
  int ranks_per_node = 2;
  std::string worker;  // defaults to octgb_worker next to this binary
  std::string mode = "elastic";
  int atoms = 400;
  long long seed = 31;
  int threads = 1;
  std::string kill;  // "R@MS,R@MS"
  bool bind = false;
  bool gate = false;
  bool fig5 = false;
  int max_ranks = 8;
  double timeout_ms = 120000.0;
  std::string metrics_out;
  std::string csv_out = "bench_out/launch_fig5.csv";
  bool keep = false;
};

std::vector<KillSpec> parse_kills(const std::string& text) {
  std::vector<KillSpec> kills;
  for (const auto& part : util::split(text, ',')) {
    if (part.empty()) continue;
    const auto at = part.find('@');
    OCTGB_CHECK_MSG(at != std::string::npos && at > 0,
                    "--kill wants R@MS, got '" << part << "'");
    KillSpec k;
    k.rank = std::atoi(part.substr(0, at).c_str());
    k.after_ms = std::atof(part.substr(at + 1).c_str());
    kills.push_back(k);
  }
  return kills;
}

std::string worker_next_to(const char* argv0) {
  std::filesystem::path p(argv0);
  return (p.parent_path() / "octgb_worker").string();
}

JobSpec make_spec(const CliOptions& opt) {
  JobSpec spec;
  spec.ranks = opt.ranks;
  spec.topology.ranks_per_node = opt.ranks_per_node;
  spec.bind_cores = opt.bind;
  spec.timeout_ms = opt.timeout_ms;
  spec.command = {opt.worker,
                  "--mode",    opt.mode,
                  "--atoms",   std::to_string(opt.atoms),
                  "--seed",    std::to_string(opt.seed),
                  "--threads", std::to_string(opt.threads)};
  return spec;
}

/// The exact bits a rank reported, read back from its epol file.
std::optional<std::uint64_t> read_epol_bits(const std::string& dir,
                                            int rank) {
  std::string text;
  if (!util::io::read_file(dir + "/epol." + std::to_string(rank), text))
    return std::nullopt;
  return std::strtoull(text.c_str(), nullptr, 16);
}

std::uint64_t bits_of(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void cleanup(const CliOptions& opt, const JobResult& result) {
  if (opt.keep) {
    std::printf("[job] kept %s\n", result.job_dir.c_str());
    return;
  }
  std::error_code ec;
  std::filesystem::remove_all(result.job_dir, ec);
}

void print_job(const JobResult& r) {
  std::printf("[job] %s: %.0f ms, %d kill(s) delivered%s\n",
              r.job_dir.c_str(), r.wall_ms, r.kills_delivered,
              r.timed_out ? ", TIMED OUT" : "");
  for (std::size_t i = 0; i < r.ranks.size(); ++i) {
    const auto& rr = r.ranks[i];
    if (rr.killed_by_chaos)
      std::printf("  rank %zu: SIGKILLed by chaos schedule\n", i);
    else if (rr.term_signal != 0)
      std::printf("  rank %zu: died from signal %d\n", i, rr.term_signal);
    else
      std::printf("  rank %zu: exit %d\n", i, rr.exit_code);
  }
}

/// Run one job and verify every surviving rank reported `ref_bits`.
/// Returns false (and prints why) on any divergence.
bool run_and_check(const CliOptions& opt, const std::vector<KillSpec>& kills,
                   std::uint64_t ref_bits, JobResult* out = nullptr) {
  JobSpec spec = make_spec(opt);
  spec.kills = kills;
  const JobResult r = mpp::launch::run_job(spec);
  print_job(r);
  bool ok = !r.timed_out && r.survivors_clean();
  if (!ok) std::printf("  FAIL: job did not finish cleanly\n");
  int survivors = 0;
  for (int rank = 0; rank < opt.ranks; ++rank) {
    if (r.ranks[rank].killed_by_chaos) continue;
    const auto bits = read_epol_bits(r.job_dir, rank);
    if (!bits) {
      std::printf("  FAIL: rank %d wrote no epol file\n", rank);
      ok = false;
      continue;
    }
    ++survivors;
    if (*bits != ref_bits) {
      std::printf("  FAIL: rank %d bits %016" PRIx64 " != reference %016"
                  PRIx64 "\n",
                  rank, *bits, ref_bits);
      ok = false;
    }
  }
  if (survivors == 0) {
    std::printf("  FAIL: no survivor reported a result\n");
    ok = false;
  }
  if (out != nullptr) *out = r;
  if (ok)
    std::printf("  ok: %d survivor(s) bit-identical to reference\n",
                survivors);
  cleanup(opt, r);
  return ok;
}

/// The in-thread reference result: the same elastic pipeline over the
/// PR-1..8 transport. The gate's contract is that a *different transport*
/// (real processes, shm + TCP, real SIGKILLs) reproduces these exact bits.
double reference_epol(const CliOptions& opt, core::GBEngine& engine) {
  core::ElasticConfig cfg;
  cfg.hybrid.ranks = opt.ranks;
  cfg.hybrid.threads_per_rank = opt.threads;
  cfg.hybrid.topology.ranks_per_node = opt.ranks_per_node;
  return core::run_hybrid_elastic(engine, cfg).epol;
}

int run_gate(const CliOptions& opt) {
  std::printf("=== proc-chaos gate: %d ranks (%d/node), %d atoms ===\n\n",
              opt.ranks, opt.ranks_per_node, opt.atoms);
  OCTGB_CHECK_MSG(opt.mode == "elastic",
                  "--gate requires --mode elastic (recovery contract)");

  // Reference over the in-thread transport.
  auto molecule = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(opt.atoms),
       .seed = static_cast<std::uint64_t>(opt.seed)});
  surface::SurfaceParams sp;
  sp.subdivision = molecule.size() > 20000 ? 0 : 1;
  const auto surf = surface::build_surface(molecule, sp);
  core::GBEngine engine(molecule, surf, core::EngineConfig{});
  const double ref = reference_epol(opt, engine);
  const std::uint64_t ref_bits = bits_of(ref);
  std::printf("in-thread reference Epol = %.12f (bits %016" PRIx64 ")\n\n",
              ref, ref_bits);

  trace::MetricsRegistry m;
  int failures = 0;

  // Warmup job (page cache, lazy binding) so the baseline wall time the
  // kill schedule and the Young/Daly check key off is a warm measurement.
  {
    JobSpec warm = make_spec(opt);
    const JobResult w = mpp::launch::run_job(warm);
    std::error_code ec;
    std::filesystem::remove_all(w.job_dir, ec);
  }

  // Fault-free process job: same bits across the process boundary.
  std::printf("--- baseline (no kills) ---\n");
  JobResult base;
  if (!run_and_check(opt, {}, ref_bits, &base)) ++failures;
  m.set("gate.baseline.wall_ms", base.wall_ms);
  std::printf("\n");

  // Kill sweeps: take out the top k ranks mid-run, k = 1 .. P-1 (rank 0
  // always survives to report). Kills trigger on checkpoint-store
  // progress, not wall time: the i-th kill fires once i+1 task
  // checkpoints exist, which provably lands mid-pipeline (the store
  // only fills while ranks are computing) regardless of machine speed.
  double worst_killed_wall = base.wall_ms;
  for (int k = 1; k < opt.ranks; ++k) {
    std::printf("--- kill %d of %d rank processes ---\n", k, opt.ranks);
    std::vector<KillSpec> kills;
    for (int i = 0; i < k; ++i) {
      KillSpec kill;
      kill.rank = opt.ranks - 1 - i;
      kill.after_store_files = i + 1;
      kills.push_back(kill);
    }
    JobResult r;
    const bool ok = run_and_check(opt, kills, ref_bits, &r);
    if (!ok) ++failures;
    const std::string scope = util::format("gate.kill%d", k);
    m.set(scope + ".wall_ms", r.wall_ms);
    m.set(scope + ".kills_delivered",
          static_cast<std::uint64_t>(r.kills_delivered));
    m.set(scope + ".bit_identical", std::uint64_t{ok ? 1u : 0u});
    worst_killed_wall = std::max(worst_killed_wall, r.wall_ms);
    std::printf("\n");
  }

  // Young/Daly cross-check: the measured worst-case recovery overhead
  // (the launcher's chaos schedule is far more brutal than a Poisson
  // failure process — every job loses ranks) against the modeled
  // overhead at the equivalent MTBF on the simulated cluster. Advisory:
  // the gate is the bit-identity above, the model tells us whether the
  // measured cost is in a sane regime.
  const double measured_overhead =
      base.wall_ms > 0.0
          ? std::max(0.0, (worst_killed_wall - base.wall_ms) / base.wall_ms)
          : 0.0;
  sim::ClusterConfig cluster;
  cluster.ranks = opt.ranks;
  cluster.threads_per_rank = opt.threads;
  cluster.topology.ranks_per_node = opt.ranks_per_node;
  const sim::SimResult simr = sim::simulate_cluster(engine, cluster);
  sim::RecoveryConfig rc;
  // One failure per job of baseline length — the chaos schedule's rate.
  rc.mtbf_seconds = std::max(1e-3, base.wall_ms / 1e3);
  rc.checkpoint_seconds = 0.05;
  const auto est = sim::estimate_recovery(simr, rc);
  std::printf("Young/Daly check: measured worst overhead %.1f%%, modeled "
              "%.1f%% at MTBF %.2fs (interval %.2fs)\n",
              100.0 * measured_overhead, 100.0 * est.overhead_fraction,
              rc.mtbf_seconds, est.interval_seconds);
  m.set("gate.measured_overhead_fraction", measured_overhead);
  m.set("gate.modeled_overhead_fraction", est.overhead_fraction);
  m.set("gate.modeled_interval_seconds", est.interval_seconds);
  m.set("gate.failures", static_cast<std::uint64_t>(failures));

  if (!opt.metrics_out.empty()) {
    if (m.save_json(opt.metrics_out))
      std::printf("[metrics] wrote %s\n", opt.metrics_out.c_str());
    else
      std::printf("[metrics] FAILED to write %s\n", opt.metrics_out.c_str());
  }

  if (failures > 0) {
    std::printf("\nGATE FAILED: %d job(s) broke bit-identical recovery\n",
                failures);
    return 1;
  }
  std::printf("\nGATE PASSED: recovery is bit-identical across the process "
              "boundary\n");
  return 0;
}

int run_fig5(CliOptions opt) {
  std::printf("=== multi-process scaling sweep (fig5-style) ===\n\n");
  util::Table t("out-of-process scaling: wall time vs rank processes");
  t.header({"ranks", "wall_ms", "speedup", "clean"});
  double wall1 = 0.0;
  for (int P = 1; P <= opt.max_ranks; P *= 2) {
    opt.ranks = P;
    JobSpec spec = make_spec(opt);
    const JobResult r = mpp::launch::run_job(spec);
    const bool clean = !r.timed_out && r.survivors_clean();
    if (P == 1) wall1 = r.wall_ms;
    t.row({std::to_string(P), util::format("%.1f", r.wall_ms),
           clean && r.wall_ms > 0.0 ? util::format("%.3f", wall1 / r.wall_ms)
                                    : "0",
           clean ? "1" : "0"});
    cleanup(opt, r);
  }
  t.print();
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(opt.csv_out).parent_path(), ec);
  if (t.write_csv(opt.csv_out))
    std::printf("[csv] wrote %s\n", opt.csv_out.c_str());
  else
    std::printf("[csv] FAILED to write %s\n", opt.csv_out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  util::Args args;
  args.add("ranks", &opt.ranks, "rank processes to launch");
  args.add("ranks-per-node", &opt.ranks_per_node,
           "topology: ranks sharing a shm node");
  args.add("worker", &opt.worker,
           "rank executable (default: octgb_worker next to this binary)");
  args.add("mode", &opt.mode, "worker mode: pingpong|hybrid|elastic");
  args.add("atoms", &opt.atoms, "synthetic protein size");
  args.add("seed", &opt.seed, "molecule generator seed");
  args.add("threads", &opt.threads, "work-stealing workers per rank");
  args.add("kill", &opt.kill, "chaos schedule, e.g. 3@150,2@200 (R@MS)");
  args.flag("bind", &opt.bind, "pin each rank to a core of its node block");
  args.flag("gate", &opt.gate,
            "run the bit-identity chaos gate (exit 1 on any break)");
  args.flag("fig5", &opt.fig5, "multi-process scaling sweep, CSV output");
  args.add("max-ranks", &opt.max_ranks, "largest P of the --fig5 sweep");
  args.add("timeout-ms", &opt.timeout_ms, "whole-job watchdog");
  args.add("metrics-out", &opt.metrics_out, "gate metrics JSON path");
  args.add("csv-out", &opt.csv_out, "fig5 CSV path");
  args.flag("keep", &opt.keep, "keep job directories (debugging)");
  args.parse(argc, argv);

  if (opt.worker.empty()) opt.worker = worker_next_to(argv[0]);
  OCTGB_CHECK_MSG(std::filesystem::exists(opt.worker),
                  "worker binary not found: " << opt.worker);

  if (opt.gate) return run_gate(opt);
  if (opt.fig5) return run_fig5(opt);

  // Plain single job.
  JobSpec spec = make_spec(opt);
  spec.kills = parse_kills(opt.kill);
  const JobResult r = mpp::launch::run_job(spec);
  print_job(r);
  for (int rank = 0; rank < opt.ranks; ++rank) {
    const auto bits = read_epol_bits(r.job_dir, rank);
    if (bits)
      std::printf("  rank %d epol bits %016" PRIx64 "\n", rank, *bits);
  }
  const bool ok = !r.timed_out && r.survivors_clean();
  cleanup(opt, r);
  return ok ? 0 : 1;
}
