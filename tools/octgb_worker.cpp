// One rank process of the out-of-process mpp transport (DESIGN.md §2.10).
//
// Launched by tools/octgb_launch (never by hand): rendezvous arrives via
// OCTGB_MPP_RANK / OCTGB_MPP_SIZE / OCTGB_MPP_DIR. Every rank builds the
// identical molecule + engine from (--atoms, --seed) — the paper's
// replicated-data processes — then runs one rank body over the shm/TCP
// transport:
//
//   --mode pingpong   transport smoke test (tagged p2p + allreduce)
//   --mode hybrid     run_hybrid_rank (the plain Fig. 4 pipeline)
//   --mode elastic    run_elastic_rank over the job's file-backed
//                     checkpoint store (survives SIGKILLed peers)
//
// On success the rank writes two artifacts into the job directory:
//   epol.<rank>          the energy, as exact hex double bits + decimal
//   metrics.<rank>.json  mpp.transport.* / comm / recovery counters
// The launcher compares the hex bits across ranks, runs, and transports —
// the bit-identical-recovery gate.

#include <cstdio>
#include <cstring>

#include "octgb/octgb.hpp"

using namespace octgb;

namespace {

double run_pingpong(mpp::Comm& comm) {
  // Every ordered pair exchanges one tagged value, then an allreduce
  // checks the global sum — exercises both media (shm ring for same-node
  // peers, TCP for cross-node) plus the collective tree over the wire.
  const int me = comm.rank();
  const int P = comm.size();
  for (int dst = 0; dst < P; ++dst)
    if (dst != me) comm.send_value(dst, /*tag=*/7, me);
  std::uint64_t sum = static_cast<std::uint64_t>(me);
  for (int src = 0; src < P; ++src)
    if (src != me) sum += static_cast<std::uint64_t>(comm.recv_value<int>(src, 7));
  const std::uint64_t expect =
      static_cast<std::uint64_t>(P) * static_cast<std::uint64_t>(P - 1) / 2;
  OCTGB_CHECK_MSG(sum == expect, "pingpong sum " << sum << " != " << expect);
  const std::uint64_t total = comm.allreduce_sum(sum);
  OCTGB_CHECK(total == expect * static_cast<std::uint64_t>(P));
  return static_cast<double>(total);
}

void write_epol(const std::string& dir, int rank, double epol) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &epol, sizeof(bits));
  const std::string text = util::format(
      "%016llx %.17g\n", static_cast<unsigned long long>(bits), epol);
  OCTGB_CHECK_MSG(util::io::write_file_atomic(
                      dir + "/epol." + std::to_string(rank), text),
                  "cannot write epol file");
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "elastic";
  int atoms = 400;
  long long seed = 31;
  int threads = 1;
  util::Args args;
  args.add("mode", &mode, "pingpong|hybrid|elastic");
  args.add("atoms", &atoms, "synthetic protein size (replicated data)");
  args.add("seed", &seed, "molecule generator seed");
  args.add("threads", &threads, "work-stealing workers per rank");
  args.parse(argc, argv);

  auto env = mpp::proc::ProcessRuntime::from_env();
  if (!env) {
    std::fprintf(stderr,
                 "octgb_worker: no rendezvous environment — launch via "
                 "octgb_launch\n");
    return 2;
  }

  double epol = 0.0;
  core::RankOutcome outcome;

  // Replicated data: built identically in every rank process, before the
  // transport attaches (tree builds dwarf rendezvous; no peer waits on us
  // until the first receive).
  std::unique_ptr<core::GBEngine> engine;
  mol::Molecule molecule;
  surface::Surface surf;
  if (mode != "pingpong") {
    molecule = mol::generate_protein(
        {.target_atoms = static_cast<std::size_t>(atoms),
         .seed = static_cast<std::uint64_t>(seed)});
    surface::SurfaceParams sp;
    sp.subdivision = molecule.size() > 20000 ? 0 : 1;
    surf = surface::build_surface(molecule, sp);
    engine = std::make_unique<core::GBEngine>(molecule, surf,
                                              core::EngineConfig{});
  }

  const auto rr = mpp::proc::ProcessRuntime::run(*env, [&](mpp::Comm& comm) {
    if (mode == "pingpong") {
      epol = run_pingpong(comm);
      return;
    }
    core::HybridConfig hc;
    hc.ranks = env->size;
    hc.threads_per_rank = threads;
    hc.topology = comm.topology();
    if (mode == "hybrid") {
      outcome = core::run_hybrid_rank(*engine, hc, comm);
    } else {
      OCTGB_CHECK_MSG(mode == "elastic", "unknown --mode " << mode);
      core::ElasticConfig cfg;
      cfg.hybrid = hc;
      // Real stable storage shared by all rank processes; a rank
      // SIGKILLed mid-write leaves no torn checkpoint (atomic rename).
      core::CheckpointStore store(env->dir + "/ckpt");
      outcome = core::run_elastic_rank(*engine, cfg, comm, store);
    }
    epol = outcome.epol;
  });

  write_epol(env->dir, env->rank, epol);

  trace::MetricsRegistry m;
  const auto& t = rr.transport;
  m.set("mpp.transport.frames_sent", t.frames_sent);
  m.set("mpp.transport.frames_received", t.frames_received);
  m.set("mpp.transport.shm_frames", t.shm_frames);
  m.set("mpp.transport.tcp_frames", t.tcp_frames);
  m.set("mpp.transport.bytes_sent", t.bytes_sent);
  m.set("mpp.transport.reconnects", t.reconnects);
  m.set("mpp.transport.connection_losses", t.connection_losses);
  m.set("mpp.transport.crc_failures", t.crc_failures);
  m.set("mpp.transport.heartbeats_sent", t.heartbeats_sent);
  m.set("mpp.transport.sends_dropped_dead", t.sends_dropped_dead);
  m.add_comm("rank", rr.counters);
  if (mode == "elastic") {
    m.set("recovery.tasks_computed", outcome.tasks_computed);
    m.set("recovery.tasks_recomputed", outcome.tasks_recomputed);
    m.set("recovery.control_retries", outcome.control_retries);
  }
  m.save_json(env->dir + "/metrics." + std::to_string(env->rank) + ".json");
  return 0;
}
