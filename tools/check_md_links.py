#!/usr/bin/env python3
"""Markdown link checker for the repo's handbook documents.

Verifies that every relative link and image target in the given markdown
files exists on disk (anchors are stripped; http/https/mailto links are
skipped — CI must not depend on the network). Exits nonzero and lists
every broken link.

Arguments may be markdown files or directories; a directory is walked
recursively and every *.md under it is checked.

Usage: tools/check_md_links.py README.md DESIGN.md docs/ ...
"""

import os
import re
import sys

# Inline links/images: [text](target) — ignores code spans line-wise.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def check_file(md_path):
    broken = []
    base = os.path.dirname(os.path.abspath(md_path))
    in_code_block = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_code_block = not in_code_block
                continue
            if in_code_block:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = os.path.normpath(os.path.join(base, path))
                if not os.path.exists(resolved):
                    broken.append((md_path, lineno, target))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    targets = []
    all_broken = []
    for arg in argv[1:]:
        if os.path.isdir(arg):
            for root, _dirs, files in os.walk(arg):
                targets.extend(
                    os.path.join(root, f) for f in sorted(files)
                    if f.endswith(".md"))
        else:
            targets.append(arg)
    checked = 0
    for md in targets:
        if not os.path.exists(md):
            all_broken.append((md, 0, "<file itself missing>"))
            continue
        checked += 1
        all_broken.extend(check_file(md))
    if all_broken:
        for md, lineno, target in all_broken:
            print(f"BROKEN {md}:{lineno}: {target}")
        print(f"{len(all_broken)} broken link(s) in {checked} file(s)")
        return 1
    print(f"OK: all relative links resolve in {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
