// Energy minimization with GB forces: steepest descent on the
// polarization energy (frozen Born radii per outer iteration, the
// standard MD-package approximation), refreshing radii and the octree
// every few steps — the "minimal total free energy" workflow the paper's
// introduction motivates.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int atoms = 500;
  int outer = 5;
  int inner = 4;
  util::Args args;
  args.add("atoms", &atoms, "synthetic protein size");
  args.add("outer", &outer, "outer iterations (radius refresh)");
  args.add("inner", &inner, "descent steps per outer iteration");
  args.parse(argc, argv);

  mol::Molecule molecule = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(atoms), .seed = 66});
  std::printf("minimizing Epol of %zu atoms (%d x %d steps)\n\n",
              molecule.size(), outer, inner);

  util::Table t("steepest descent on Epol (frozen radii per outer step)");
  t.header({"outer", "inner", "Epol", "max |F|", "step (A)"});

  double previous = 0.0;
  for (int o = 0; o < outer; ++o) {
    // Refresh surface, octrees and Born radii at the current geometry.
    const auto surf = surface::build_surface(molecule);
    core::GBEngine engine(molecule, surf);
    const auto state = engine.compute();
    std::vector<double> born = state.born;
    double e = state.epol;
    if (o == 0) previous = e;

    for (int i = 0; i < inner; ++i) {
      perf::WorkCounters wc;
      const auto forces = core::approx_epol_forces(engine, born, wc);
      double fmax = 0.0;
      for (const auto& f : forces) fmax = std::max(fmax, f.norm());
      if (fmax < 1e-9) break;
      // Conservative step: move the strongest-pulled atom 0.02 Å.
      const double step = 0.02 / fmax;
      for (std::size_t a = 0; a < molecule.size(); ++a)
        molecule.atoms()[a].pos += forces[a] * step;
      e = core::naive_epol(molecule, born);
      t.row({util::format("%d", o), util::format("%d", i),
             util::format("%.2f", e), util::format("%.3f", fmax),
             util::format("%.4f", step * fmax)});
    }
  }
  t.print();
  const double final_e = core::naive_epol(
      molecule,
      core::naive_born_radii(molecule, surface::build_surface(molecule)));
  std::printf("\nEpol: %.2f -> %.2f kcal/mol (%+.2f)\n", previous, final_e,
              final_e - previous);
  return 0;
}
