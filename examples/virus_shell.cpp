// Large-molecule workflow (the paper's §V-F): generate a virus-capsid
// shell, run the hybrid distributed-shared algorithm on the real mpp
// runtime (ranks are threads here), and show how the same problem maps
// onto simulated cluster shapes of the Table I machine.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int atoms = 20000;
  int ranks = 4;
  int threads = 2;
  util::Args args;
  args.add("atoms", &atoms, "shell atom count");
  args.add("ranks", &ranks, "mpp ranks (P)");
  args.add("threads", &threads, "worker threads per rank (p)");
  args.parse(argc, argv);

  const mol::Molecule shell = mol::generate_virus_shell(
      {.target_atoms = static_cast<std::size_t>(atoms), .seed = 7});
  const surface::Surface surf = surface::build_surface(
      shell, {.subdivision = 0});
  std::printf("shell: %zu atoms, %zu quadrature points, area %.0f A^2\n",
              shell.size(), surf.size(), surf.total_area());

  core::GBEngine engine(shell, surf);

  // --- real hybrid run on the in-process message-passing runtime --------
  core::HybridConfig hybrid;
  hybrid.ranks = ranks;
  hybrid.threads_per_rank = threads;
  perf::Timer timer;
  const auto result = core::run_hybrid(engine, hybrid);
  std::printf(
      "\nhybrid run (P=%d x p=%d, real message passing): Epol = %.1f "
      "kcal/mol in %s wall\n",
      ranks, threads, result.epol,
      util::human_seconds(result.wall_seconds).c_str());
  std::uint64_t bytes = 0, msgs = 0;
  for (const auto& c : result.comm_per_rank) {
    bytes += c.bytes_internode + c.bytes_intranode;
    msgs += c.messages_internode + c.messages_intranode;
  }
  std::printf("communication: %llu messages, %s total\n",
              static_cast<unsigned long long>(msgs),
              util::human_bytes(static_cast<double>(bytes)).c_str());
  std::printf("replicated data per rank: %s\n",
              util::human_bytes(static_cast<double>(result.bytes_per_rank))
                  .c_str());

  // --- the same problem on simulated Lonestar4 shapes -------------------
  util::Table t("modeled time on the paper's cluster (Table I machine)");
  t.header({"configuration", "cores", "modeled time", "Epol"});
  struct Shape {
    const char* name;
    sim::ClusterConfig cfg;
  };
  sim::ClusterConfig cilk, mpi, hyb;
  cilk.ranks = 1;
  cilk.threads_per_rank = 12;
  mpi.ranks = 12;
  hyb.ranks = 2;
  hyb.threads_per_rank = 6;
  hyb.topology.ranks_per_node = 2;
  const Shape shapes[] = {{"OCT_CILK (1x12)", cilk},
                          {"OCT_MPI (12x1)", mpi},
                          {"OCT_MPI+CILK (2x6)", hyb}};
  for (const auto& s : shapes) {
    const auto r = sim::simulate_cluster(engine, s.cfg);
    t.row({s.name, util::format("%d", r.total_cores),
           util::human_seconds(r.total_seconds),
           util::format("%.1f", r.epol)});
  }
  t.print();
  return 0;
}
