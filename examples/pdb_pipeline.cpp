// PDB pipeline: write a synthetic molecule to a real PDB file, read it
// back, assign radii/charges, and verify the energy survives the
// round-trip — the workflow for feeding external structures to octgb.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int atoms = 800;
  std::string path = "example_molecule.pdb";
  util::Args args;
  args.add("atoms", &atoms, "synthetic protein size");
  args.add("out", &path, "PDB file to write");
  args.parse(argc, argv);

  const mol::Molecule original = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(atoms), .seed = 77});

  if (!mol::write_pdb_file(original, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu atoms, %zu residues)\n", path.c_str(),
              original.size(),
              static_cast<std::size_t>(original.labels().back().residue_seq));

  const mol::Molecule parsed = mol::read_pdb_file(path);
  std::printf("read back %zu atoms, net charge %+.2f e\n", parsed.size(),
              parsed.net_charge());

  auto energy = [](const mol::Molecule& m) {
    const auto surf = surface::build_surface(m);
    core::GBEngine engine(m, surf);
    return engine.compute().epol;
  };
  const double e_original = energy(original);
  const double e_parsed = energy(parsed);
  std::printf(
      "\nEpol original  = %.2f kcal/mol\nEpol round-trip = %.2f kcal/mol\n"
      "difference     = %.4f %% (PDB stores 3 decimals of position)\n",
      e_original, e_parsed, perf::percent_error(e_parsed, e_original));
  return 0;
}
