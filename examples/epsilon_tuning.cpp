// Speed–accuracy tuning: sweep the approximation parameters and watch the
// measured work and error trade off (§II: "by tuning these parameters one
// can get a more accurate approximation of Epol at the cost of increasing
// the running time and vice versa" — with space usage independent of the
// parameter, unlike cutoff-based methods).

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int atoms = 4000;
  util::Args args;
  args.add("atoms", &atoms, "synthetic protein size");
  args.parse(argc, argv);

  const mol::Molecule molecule = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(atoms), .seed = 5});
  const surface::Surface surf = surface::build_surface(molecule);

  const auto naive_born = core::naive_born_radii(molecule, surf);
  const double naive_e = core::naive_epol(molecule, naive_born);
  std::printf("%zu atoms, exact Epol = %.2f kcal/mol\n\n", molecule.size(),
              naive_e);

  util::Table t("speed-accuracy tradeoff (both eps swept together)");
  t.header({"eps", "interactions", "vs naive work", "wall", "err %",
            "octree bytes"});

  const double naive_work =
      double(molecule.size()) * double(surf.size()) +
      double(molecule.size()) * double(molecule.size());

  for (double eps : {0.1, 0.3, 0.5, 0.9, 1.5, 3.0}) {
    core::EngineConfig cfg;
    cfg.approx.eps_born = eps;
    cfg.approx.eps_epol = eps;
    core::GBEngine engine(molecule, surf, cfg);
    perf::Timer timer;
    const auto r = engine.compute();
    t.row({util::format("%.1f", eps),
           util::format("%llu", static_cast<unsigned long long>(
                                    r.work.total_interactions())),
           util::format("%.2f", double(r.work.total_interactions()) /
                                    naive_work),
           util::human_seconds(timer.seconds()),
           util::format("%+.4f", perf::percent_error(r.epol, naive_e)),
           // Space does NOT change with eps — the paper's key contrast
           // with cutoff-based nblists.
           util::human_bytes(double(engine.footprint_bytes()))});
  }
  t.print();
  std::puts(
      "\nNote the last column: octree memory is identical at every eps — "
      "the space/accuracy decoupling that nblist-based packages lack.");
  return 0;
}
