// Quickstart: compute the GB polarization energy of a protein with the
// octree engine and compare against the exact (naive) algorithm.
//
//   ./quickstart [--atoms N] [--eps 0.9] [--pdb file.pdb]
//
// Demonstrates the core 4-step API:
//   1. get a molecule (synthetic or from a PDB file),
//   2. sample its surface with Gaussian quadrature points,
//   3. build a GBEngine,
//   4. compute() → Epol + per-atom Born radii.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int atoms = 1000;
  double eps = 0.9;
  std::string pdb_path;
  util::Args args;
  args.add("atoms", &atoms, "synthetic protein size (ignored with --pdb)");
  args.add("eps", &eps, "approximation parameter for both phases");
  args.add("pdb", &pdb_path, "read this PDB file instead of synthesizing");
  args.parse(argc, argv);

  // 1. Molecule.
  const mol::Molecule molecule =
      pdb_path.empty()
          ? mol::generate_protein(
                {.target_atoms = static_cast<std::size_t>(atoms), .seed = 1})
          : mol::read_pdb_file(pdb_path);
  std::printf("molecule: %s, %zu atoms, net charge %+.2f e\n",
              molecule.name().c_str(), molecule.size(),
              molecule.net_charge());

  // 2. Surface quadrature points.
  const surface::Surface surf = surface::build_surface(molecule);
  std::printf("surface: %zu quadrature points, exposed area %.1f A^2\n",
              surf.size(), surf.total_area());

  // 3. Engine with the requested approximation parameter.
  core::EngineConfig config;
  config.approx.eps_born = eps;
  config.approx.eps_epol = eps;
  core::GBEngine engine(molecule, surf, config);

  // 4. Octree-approximated energy.
  perf::Timer timer;
  const core::EnergyResult result = engine.compute();
  std::printf("\noctree Epol  = %12.2f kcal/mol   (%s, %llu interactions)\n",
              result.epol, util::human_seconds(timer.seconds()).c_str(),
              static_cast<unsigned long long>(
                  result.work.total_interactions()));

  // Exact reference for comparison.
  timer.reset();
  const auto naive_born = core::naive_born_radii(molecule, surf);
  const double naive_e = core::naive_epol(molecule, naive_born);
  std::printf("naive  Epol  = %12.2f kcal/mol   (%s, exact)\n", naive_e,
              util::human_seconds(timer.seconds()).c_str());
  std::printf("difference   = %12.4f %%\n",
              perf::percent_error(result.epol, naive_e));

  // Born radius summary.
  perf::RunStats radii;
  for (double r : result.born) radii.add(r);
  std::printf(
      "\nBorn radii: min %.2f A, mean %.2f A, max %.2f A over %zu atoms\n",
      radii.min(), radii.mean(), radii.max(), result.born.size());
  return 0;
}
