// Docking scan: the use case the paper's introduction motivates — scoring
// a ligand at many poses around a receptor.
//
// The octrees are built once; each pose applies a rigid transform to the
// ligand (the paper: "we can move the same octree to different positions
// or rotate it ... and then recompute the energy values") and re-evaluates
// the polarization energy of the complex. The pose with the most negative
// ΔEpol = Epol(complex) − Epol(receptor) − Epol(ligand) wins.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

namespace {

double epol_of(const mol::Molecule& m) {
  const auto surf = surface::build_surface(m);
  core::GBEngine engine(m, surf);
  return engine.compute().epol;
}

}  // namespace

int main(int argc, char** argv) {
  int receptor_atoms = 2000;
  int ligand_atoms = 300;
  int poses = 12;
  util::Args args;
  args.add("receptor-atoms", &receptor_atoms, "receptor size");
  args.add("ligand-atoms", &ligand_atoms, "ligand size");
  args.add("poses", &poses, "number of poses to score");
  args.parse(argc, argv);

  const mol::Molecule receptor = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(receptor_atoms), .seed = 7});
  const mol::Molecule ligand = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(ligand_atoms), .seed = 8});

  const double e_receptor = epol_of(receptor);
  const double e_ligand = epol_of(ligand);
  std::printf("receptor: %zu atoms, Epol %.1f kcal/mol\n", receptor.size(),
              e_receptor);
  std::printf("ligand:   %zu atoms, Epol %.1f kcal/mol\n\n", ligand.size(),
              e_ligand);

  // Place the ligand at `poses` points around the receptor surface and
  // score each pose.
  const geom::Vec3 center = receptor.centroid();
  double receptor_radius = 0.0;
  for (const auto& a : receptor.atoms())
    receptor_radius =
        std::max(receptor_radius, geom::dist(a.pos, center) + a.radius);
  double ligand_radius = 0.0;
  const geom::Vec3 lig_center = ligand.centroid();
  for (const auto& a : ligand.atoms())
    ligand_radius =
        std::max(ligand_radius, geom::dist(a.pos, lig_center) + a.radius);
  const double contact = receptor_radius + 0.65 * ligand_radius;

  util::Table t("docking scan (rigid poses on a sphere around the receptor)");
  t.header({"pose", "yaw", "pitch", "Epol(complex)", "dEpol"});

  double best = 1e300;
  int best_pose = -1;
  util::Xoshiro256 rng(123);
  for (int pose = 0; pose < poses; ++pose) {
    const double yaw = 2.0 * 3.14159265 * pose / poses;
    const double pitch = rng.uniform(-0.6, 0.6);
    const geom::Vec3 dir{std::cos(yaw) * std::cos(pitch),
                         std::sin(yaw) * std::cos(pitch), std::sin(pitch)};

    // Rigid transform: rotate the ligand, then translate it to the pose.
    mol::Molecule posed = ligand;
    geom::RigidTransform xform =
        geom::RigidTransform::translate(center + dir * contact - lig_center) *
        geom::RigidTransform::rotate(
            geom::Mat3::axis_angle({0, 0, 1}, yaw));
    posed.transform(xform);

    // Score the complex.
    mol::Molecule complex_mol(receptor.name() + "+" + ligand.name());
    for (const auto& a : receptor.atoms()) complex_mol.add_atom(a);
    for (const auto& a : posed.atoms()) complex_mol.add_atom(a);
    const double e_complex = epol_of(complex_mol);
    const double delta = e_complex - e_receptor - e_ligand;
    if (delta < best) {
      best = delta;
      best_pose = pose;
    }
    t.row({util::format("%d", pose), util::format("%.2f", yaw),
           util::format("%.2f", pitch), util::format("%.1f", e_complex),
           util::format("%+.1f", delta)});
  }
  t.print();
  std::printf("\nbest pose: #%d with dEpol = %+.1f kcal/mol\n", best_pose,
              best);
  return 0;
}
