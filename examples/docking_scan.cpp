// Docking scan: the use case the paper's introduction motivates — scoring
// a ligand at many poses around a receptor.
//
// One ScoringSession holds the complex; each pose is a rigid transform of
// the ligand *relative to its base placement* (the paper: "we can move the
// same octree to different positions or rotate it ... and then recompute
// the energy values"). PoseMode::CrossScreen freezes each body's Born
// radii at its isolated base evaluation, so a pose costs one rigid octree
// refit plus a cross-tree Epol traversal; the best pose is then re-scored
// in PoseMode::Full as a check. The pose with the most negative
// ΔEpol = Epol(complex) − Epol(receptor) − Epol(ligand) wins.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int receptor_atoms = 2000;
  int ligand_atoms = 300;
  int poses = 12;
  util::Args args;
  args.add("receptor-atoms", &receptor_atoms, "receptor size");
  args.add("ligand-atoms", &ligand_atoms, "ligand size");
  args.add("poses", &poses, "number of poses to score");
  args.parse(argc, argv);

  const mol::Molecule receptor = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(receptor_atoms), .seed = 7});
  mol::Molecule ligand = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(ligand_atoms), .seed = 8});

  // Contact geometry: poses live on a sphere around the receptor.
  const geom::Vec3 center = receptor.centroid();
  double receptor_radius = 0.0;
  for (const auto& a : receptor.atoms())
    receptor_radius =
        std::max(receptor_radius, geom::dist(a.pos, center) + a.radius);
  double ligand_radius = 0.0;
  geom::Vec3 lig_center = ligand.centroid();
  for (const auto& a : ligand.atoms())
    ligand_radius =
        std::max(ligand_radius, geom::dist(a.pos, lig_center) + a.radius);
  const double contact = receptor_radius + 0.65 * ligand_radius;

  // Base placement: ligand at the +x contact point. All pose transforms
  // are relative to these coordinates.
  ligand.transform(geom::RigidTransform::translate(
      center + geom::Vec3{contact, 0, 0} - lig_center));
  lig_center = ligand.centroid();

  mol::Molecule complex_mol(receptor.name() + "+" + ligand.name());
  for (const auto& a : receptor.atoms()) complex_mol.add_atom(a);
  const std::size_t ligand_begin = complex_mol.size();
  for (const auto& a : ligand.atoms()) complex_mol.add_atom(a);

  core::ScoringSession session(complex_mol,
                               surface::build_surface(complex_mol));
  std::printf("receptor: %zu atoms, ligand: %zu atoms, %d poses\n\n",
              receptor.size(), ligand.size(), poses);

  // Pose p: rotate the ligand about its own center, then carry it from the
  // +x contact point to the (yaw, pitch) point on the contact sphere.
  std::vector<geom::RigidTransform> pose_list;
  std::vector<double> yaws, pitches;
  util::Xoshiro256 rng(123);
  for (int pose = 0; pose < poses; ++pose) {
    const double yaw = 2.0 * 3.14159265 * pose / poses;
    const double pitch = rng.uniform(-0.6, 0.6);
    const geom::Vec3 dir{std::cos(yaw) * std::cos(pitch),
                         std::sin(yaw) * std::cos(pitch), std::sin(pitch)};
    const geom::RigidTransform spin =
        geom::RigidTransform::translate(lig_center) *
        geom::RigidTransform::rotate(geom::Mat3::axis_angle({0, 0, 1}, yaw)) *
        geom::RigidTransform::translate(-lig_center);
    pose_list.push_back(
        geom::RigidTransform::translate(center + dir * contact - lig_center) *
        spin);
    yaws.push_back(yaw);
    pitches.push_back(pitch);
  }

  const auto scores = session.score_poses(pose_list, ligand_begin,
                                          core::PoseMode::CrossScreen);

  util::Table t("docking scan (rigid poses on a sphere around the receptor)");
  t.header({"pose", "yaw", "pitch", "Epol(complex)", "dEpol", "ms"});
  double best = 1e300;
  std::size_t best_pose = 0;
  for (const auto& s : scores) {
    if (s.delta < best) {
      best = s.delta;
      best_pose = s.pose;
    }
    t.row({util::format("%zu", s.pose), util::format("%.2f", yaws[s.pose]),
           util::format("%.2f", pitches[s.pose]),
           util::format("%.1f", s.epol), util::format("%+.1f", s.delta),
           util::format("%.2f", 1e3 * s.wall_seconds)});
  }
  t.print();

  // Re-score the winner with the full pipeline (rigid surface, refit
  // trees, complete Born + Epol) to confirm the screening ranking.
  const geom::RigidTransform winner = pose_list[best_pose];
  const auto full =
      session.score_poses({&winner, 1}, ligand_begin, core::PoseMode::Full);
  std::printf("\nbest pose: #%zu with dEpol = %+.1f kcal/mol "
              "(full re-score: Epol %.1f kcal/mol)\n",
              best_pose, best, full[0].epol);
  std::printf("tree maintenance: %zu refits, %zu rebuilds\n",
              session.move_stats().refits, session.move_stats().rebuilds);
  return 0;
}
