// Flexible-molecule workflow (the paper's ref [8] use case): run a toy
// Brownian trajectory and re-evaluate the GB energy every step through one
// ScoringSession. The session keeps the atoms and quadrature octrees alive
// via O(n) refits — the RefitMonitor quality policy triggers a rebuild
// when the structure drifts too far — and reuses its EvalScratch, so the
// steady-state loop performs no heap allocation.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int atoms = 1500;
  int steps = 20;
  double step_sigma = 0.08;  // Å per step, thermal-jiggle scale
  util::Args args;
  args.add("atoms", &atoms, "synthetic protein size");
  args.add("steps", &steps, "trajectory steps");
  args.add("sigma", &step_sigma, "per-step displacement sigma (A)");
  args.parse(argc, argv);

  mol::Molecule molecule = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(atoms), .seed = 55});
  std::printf("molecule: %zu atoms, %d steps, sigma %.2f A\n\n",
              molecule.size(), steps, step_sigma);

  // Trees are built once here; every step below refits them in place.
  // The surface is re-sampled each step (exposure changes as atoms move),
  // and the session refits its quadrature tree to the new points as long
  // as the sample count is stable.
  core::ScoringSession session(molecule, surface::build_surface(molecule));

  std::vector<geom::Vec3> positions(molecule.size());
  for (std::size_t i = 0; i < molecule.size(); ++i)
    positions[i] = molecule.atom(i).pos;

  util::Table t("trajectory (session refit per step)");
  t.header({"step", "Epol", "scratch bytes", "action"});

  util::Xoshiro256 rng(99);
  for (int step = 0; step < steps; ++step) {
    // Brownian kick.
    for (auto& p : positions)
      p += geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * step_sigma;
    for (std::size_t i = 0; i < molecule.size(); ++i)
      molecule.atoms()[i].pos = positions[i];

    const core::MoveStats before = session.move_stats();
    session.update(positions, surface::build_surface(molecule));
    const auto r = session.evaluate();
    const core::MoveStats after = session.move_stats();

    t.row({util::format("%d", step), util::format("%.1f", r.epol),
           util::format("%zu", session.scratch().footprint_bytes()),
           util::format("%zu refit, %zu rebuild",
                        after.refits - before.refits,
                        after.rebuilds - before.rebuilds)});
  }
  t.print();
  std::printf("\nrefits: %zu, rebuilds: %zu — the atoms tree rides O(n) "
              "refits for thermal-scale motion; the quadrature tree rebuilds "
              "only when re-sampling changes the surface point count.\n"
              "scratch allocation events: %zu (steady state allocates "
              "nothing)\n",
              session.move_stats().refits, session.move_stats().rebuilds,
              session.scratch().allocation_events);
  return 0;
}
