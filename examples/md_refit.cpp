// Flexible-molecule workflow (the paper's ref [8] use case): run a toy
// Brownian trajectory and re-evaluate the GB energy every step, keeping
// the atoms octree alive via O(n) refits instead of rebuilding — with the
// quality monitor triggering a rebuild when the structure drifts too far.

#include <cstdio>

#include "octgb/octgb.hpp"

using namespace octgb;

int main(int argc, char** argv) {
  int atoms = 1500;
  int steps = 20;
  double step_sigma = 0.08;  // Å per step, thermal-jiggle scale
  util::Args args;
  args.add("atoms", &atoms, "synthetic protein size");
  args.add("steps", &steps, "trajectory steps");
  args.add("sigma", &step_sigma, "per-step displacement sigma (A)");
  args.parse(argc, argv);

  mol::Molecule molecule = mol::generate_protein(
      {.target_atoms = static_cast<std::size_t>(atoms), .seed = 55});
  std::printf("molecule: %zu atoms, %d steps, sigma %.2f A\n\n",
              molecule.size(), steps, step_sigma);

  // The quadrature octree is rebuilt with the surface each step (the
  // surface itself changes as atoms move); the atoms octree is refitted.
  std::vector<geom::Vec3> positions(molecule.size());
  for (std::size_t i = 0; i < molecule.size(); ++i)
    positions[i] = molecule.atom(i).pos;
  octree::DynamicOctree dyn(positions);

  util::Table t("trajectory (octree refit per step)");
  t.header({"step", "Epol", "leaf inflation", "action"});

  util::Xoshiro256 rng(99);
  for (int step = 0; step < steps; ++step) {
    // Brownian kick.
    for (auto& p : positions)
      p += geom::Vec3{rng.normal(), rng.normal(), rng.normal()} * step_sigma;
    for (std::size_t i = 0; i < molecule.size(); ++i)
      molecule.atoms()[i].pos = positions[i];

    const bool rebuilt = dyn.update(positions);

    // Energy on the refitted tree: reuse its topology by constructing the
    // engine's trees from the current coordinates (the surface must be
    // re-sampled either way since exposure changes).
    const auto surf = surface::build_surface(molecule);
    core::GBEngine engine(molecule, surf);
    const auto r = engine.compute();

    t.row({util::format("%d", step), util::format("%.1f", r.epol),
           util::format("%.3f", dyn.worst_leaf_inflation()),
           rebuilt ? "REBUILD" : "refit"});
  }
  t.print();
  std::printf("\nrefits: %zu, rebuilds: %zu — refits are O(n), rebuilds "
              "O(n log n); nblist-based codes pay the rebuild every step.\n",
              dyn.refits(), dyn.rebuilds());
  return 0;
}
